//! Minimal argument parsing for the `otune` binary.

use std::collections::HashMap;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List available workloads.
    Workloads,
    /// Run one tuning session.
    Tune {
        /// Workload name.
        task: String,
        /// Objective exponent β.
        beta: f64,
        /// Iteration budget.
        budget: usize,
        /// RNG seed.
        seed: u64,
        /// Disable the GP safe region.
        no_safety: bool,
        /// Disable adaptive sub-space generation.
        no_subspace: bool,
        /// Disable approximate gradient descent.
        no_agd: bool,
        /// Enable the local-subset sparse GP for large histories.
        sparse_gp: bool,
        /// Optional JSON output path for the runhistory.
        out: Option<String>,
        /// Optional JSONL path for the telemetry event stream (a
        /// `<path>.metrics.json` snapshot is written alongside).
        events: Option<String>,
        /// Optional fault-injection spec, e.g. `oom:0.1,straggler:0.05`
        /// (see [`otune_sparksim::FaultProfile::parse`]).
        fault_profile: Option<String>,
        /// Optional Chrome-trace/Perfetto JSON output path; enables
        /// hierarchical tracing for the run.
        trace: Option<String>,
        /// Optional tuning-corpus JSONL path: the calibration run's
        /// meta-features retrieve a zero-execution bootstrap, and every
        /// completed observation is appended back.
        corpus: Option<String>,
    },
    /// Drive a simulated fleet of periodic tasks through the batched
    /// controller (sharded waves, shared meta store) and print throughput.
    TuneFleet {
        /// Number of simulated tasks (HiBench workloads, cycled).
        tasks: usize,
        /// Periodic executions per task.
        budget: usize,
        /// Shard count override (default: `OTUNE_SHARDS` or 8).
        shards: Option<usize>,
        /// Wave-pool width override (default: `OTUNE_THREADS`).
        threads: Option<usize>,
        /// RNG seed.
        seed: u64,
        /// Enable the local-subset sparse GP for large histories.
        sparse_gp: bool,
        /// Optional JSONL path for the telemetry event stream (a
        /// `<path>.metrics.json` snapshot is written alongside).
        events: Option<String>,
        /// Optional Chrome-trace/Perfetto JSON output path; enables
        /// hierarchical tracing of the waves.
        trace: Option<String>,
        /// Optional Prometheus text-format sidecar path for the final
        /// metrics snapshot.
        prom: Option<String>,
        /// Optional tuning-corpus JSONL path: cold tasks bootstrap from
        /// k-NN retrieval over it, and every completed observation is
        /// appended back.
        corpus: Option<String>,
    },
    /// Run (or resume) a checkpointed tuning campaign under the job
    /// engine, either to completion or as a stdin-driven server.
    TuneServe {
        /// Journal path (JSONL; created if absent, resumed if it already
        /// holds a campaign).
        journal: String,
        /// Number of campaign tasks (first N HiBench workloads).
        tasks: usize,
        /// Waves (per-task tuning budget).
        budget: usize,
        /// Base RNG seed (task i derives seed + i).
        seed: u64,
        /// Objective exponent β.
        beta: f64,
        /// Consecutive failures before a task is dead-lettered.
        max_retries: usize,
        /// Journal a checkpoint every N completed waves (0 = only on
        /// pause/completion).
        checkpoint_every: u64,
        /// Optional stochastic fault-injection spec applied to every task
        /// (see [`otune_sparksim::FaultProfile::parse`]).
        fault_profile: Option<String>,
        /// Optional JSONL path for the telemetry event stream (a
        /// `<path>.metrics.json` snapshot is written alongside).
        events: Option<String>,
        /// Run every remaining wave immediately and exit instead of
        /// serving the stdin protocol.
        auto: bool,
        /// Journal sync policy (`every` | `batch:N` | `barrier`);
        /// defaults to the `OTUNE_JOURNAL_SYNC` environment variable,
        /// then `every`.
        sync: Option<String>,
        /// Write a full checkpoint every N checkpoints and deltas (only
        /// changed tasks) in between; 0 = every checkpoint is full.
        full_every: u64,
    },
    /// Compare strategies on one task.
    Compare {
        /// Workload name.
        task: String,
        /// Iteration budget.
        budget: usize,
        /// Seeds (repetitions) per method.
        seeds: u64,
    },
    /// fANOVA parameter importance for one workload.
    Importance {
        /// Workload name.
        task: String,
        /// Random evaluations for the analysis.
        samples: usize,
    },
    /// Replay a telemetry event stream written by `tune --events`.
    Events {
        /// JSONL event-stream path.
        file: String,
        /// Only events of this task.
        task: Option<String>,
        /// Only events of this kind (e.g. `SuggestionMade`).
        kind: Option<String>,
    },
    /// Summarize the metrics snapshot of a tuning session.
    Stats {
        /// Metrics JSON path (or the events path, whose
        /// `<path>.metrics.json` sidecar is used).
        file: String,
        /// Emit the snapshot as machine-readable JSON (stable key order).
        json: bool,
        /// Emit the snapshot in Prometheus text exposition format.
        prom: bool,
    },
    /// Convert the trace spans of a JSONL event stream into a
    /// Chrome-trace/Perfetto JSON file and print latency attribution.
    Trace {
        /// JSONL event-stream path.
        file: String,
        /// Optional Chrome-trace JSON output path.
        out: Option<String>,
    },
    /// Live fleet introspection over a JSONL event stream.
    Top {
        /// JSONL event-stream path.
        file: String,
        /// Refresh every S seconds until interrupted (default: render
        /// once and exit).
        watch: Option<f64>,
    },
    /// Inspect, build, or query a persistent tuning corpus.
    Corpus {
        /// What to do with the corpus.
        action: CorpusAction,
        /// Corpus JSONL path.
        file: String,
    },
    /// Inspect and maintain job-engine journals in a directory.
    Jobs {
        /// What to do with the journals.
        action: JobsAction,
        /// Directory holding `*.jsonl` journals (segments included).
        journal_dir: String,
    },
    /// Print usage.
    Help,
}

/// Sub-action of `otune jobs`.
#[derive(Debug, Clone, PartialEq)]
pub enum JobsAction {
    /// One line per journal: job id, state, waves, last checkpoint seq,
    /// torn tails, segment count.
    List,
    /// Remove completed journals, keeping the `keep` most recent.
    Gc {
        /// Completed journals to keep (most recently modified first).
        keep: usize,
    },
    /// Rewrite every journal to `JobStarted` + last full checkpoint +
    /// suffix, merging its segments.
    Compact,
}

/// Sub-action of `otune corpus`.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusAction {
    /// Simulate a fleet, append its outcomes, and persist the
    /// standardization statistics.
    Build {
        /// Number of simulated tasks.
        tasks: usize,
        /// Periodic executions per task.
        budget: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Print record/task/torn counts and standardization state.
    Stats,
    /// k-NN query using a workload's default-run meta-features.
    Query {
        /// Workload name whose features form the query.
        task: String,
        /// Neighbors to retrieve.
        k: usize,
    },
}

/// Argument-parsing failures, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
otune — online Spark tuning against the built-in simulator

USAGE:
  otune workloads
  otune tune --task <name> [--beta B] [--budget N] [--seed S]
             [--no-safety] [--no-subspace] [--no-agd] [--sparse-gp]
             [--out FILE] [--events FILE] [--fault-profile SPEC]
             [--trace FILE] [--corpus FILE]

  SPEC injects faults into the simulated runs, e.g.
    --fault-profile oom:0.1,straggler:0.05,lost:0.02,tmax:120,seed:7
  (rates per run; `tmax` in seconds kills runs over budget; omitted
  keys default to 0 / off).
  otune tune-fleet [--tasks N] [--budget N] [--shards S] [--threads T]
                   [--seed S] [--sparse-gp] [--events FILE]
                   [--trace FILE] [--prom FILE] [--corpus FILE]

  --sparse-gp caps surrogate fits for long histories to the local
  subset nearest the incumbent (also via OTUNE_SPARSE_GP=1),
  bounding suggest latency as observations accumulate.
  --corpus attaches a persistent tuning corpus (append-only JSONL):
  cold tasks bootstrap their first suggestions from k-NN retrieval
  over past (meta-features, config, outcome) records instead of
  low-discrepancy burn-in, and every completed observation is
  appended back for future fleets.
  otune tune-serve --journal FILE [--tasks N] [--budget N] [--seed S]
                   [--beta B] [--max-retries K] [--checkpoint-every N]
                   [--fault-profile SPEC] [--events FILE] [--auto]
                   [--sync every|batch:N|barrier] [--full-every N]

  tune-serve runs a crash-recoverable campaign: every state transition
  is journaled (fsynced JSONL) and the campaign resumes from its last
  checkpoint if FILE already holds one — kill -9 safe. With --auto it
  runs all remaining waves and prints the fleet summary; without it,
  it serves a line protocol on stdin (`suggest`, `report <json>`,
  `wave`, `run`, `checkpoint`, `status`, `dlq`, `stop`; EOF pauses).
  Tasks failing more than --max-retries consecutive runs move to the
  dead-letter queue with their full failure history.
  --sync selects the group-commit fsync cadence (default `every`:
  one sync_data per appended line; `batch:N` groups N lines per
  sync; `barrier` syncs only at checkpoints/pause/stop — an acked
  checkpoint survives kill -9 under every policy). --full-every N
  journals delta checkpoints (only tasks whose state changed) with a
  full checkpoint every N-th one; 0 keeps every checkpoint full.
  otune jobs list    --journal-dir DIR
  otune jobs gc      --journal-dir DIR [--keep N]
  otune jobs compact --journal-dir DIR

  jobs list prints one line per journal in DIR: job id, state, waves
  completed, last checkpoint seq, torn tails, segment count. jobs gc
  removes completed journals (and their segments), keeping the
  --keep most recent (default 3). jobs compact rewrites each journal
  to JobStarted + last full checkpoint + suffix, merging segments.
  otune corpus build --file FILE [--tasks N] [--budget N] [--seed S]
  otune corpus stats --file FILE
  otune corpus query --file FILE --task <name> [--k K]
  otune compare --task <name> [--budget N] [--seeds K]
  otune importance --task <name> [--samples N]
  otune events --file FILE [--task ID] [--kind KIND]
  otune stats --file FILE [--json | --prom]
  otune trace --file FILE [--out TRACE.json]
  otune top --file FILE [--watch S]
  otune help

  --trace enables hierarchical tracing (deterministic span ids, seeded
  by --seed) and writes a Chrome-trace/Perfetto JSON file loadable at
  ui.perfetto.dev; `otune trace` converts the spans embedded in a
  JSONL event stream instead, and prints per-phase latency
  attribution (exclusive time). `otune top` summarizes a fleet event
  stream: per-task incumbents, wave latency, failures, cache hits.
";

/// Parse a full argv (excluding the program name).
pub fn parse_args(argv: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = argv.first() else {
        return Ok(Command::Help);
    };
    // `corpus` and `jobs` take a positional sub-action before their flags.
    let (action, flag_args) = if cmd == "corpus" {
        match argv.get(1).map(String::as_str) {
            Some(a @ ("build" | "stats" | "query")) => (Some(a), &argv[2..]),
            other => {
                return Err(ParseError(format!(
                    "corpus expects build|stats|query, got {:?}",
                    other.unwrap_or("")
                )))
            }
        }
    } else if cmd == "jobs" {
        match argv.get(1).map(String::as_str) {
            Some(a @ ("list" | "gc" | "compact")) => (Some(a), &argv[2..]),
            other => {
                return Err(ParseError(format!(
                    "jobs expects list|gc|compact, got {:?}",
                    other.unwrap_or("")
                )))
            }
        }
    } else {
        (None, &argv[1..])
    };
    // Boolean switches are per-subcommand: `--prom` takes a file for
    // `tune-fleet` but is a mode switch for `stats`.
    let switch_names: &[&str] = match cmd.as_str() {
        "tune" => &["no-safety", "no-subspace", "no-agd", "sparse-gp"],
        "tune-fleet" => &["sparse-gp"],
        "tune-serve" => &["auto"],
        "stats" => &["json", "prom"],
        _ => &[],
    };
    let (flags, switches) = split_flags(flag_args, switch_names)?;
    let get = |k: &str| flags.get(k).cloned();
    let req_task =
        || get("task").ok_or_else(|| ParseError("missing required --task <name>".into()));
    let num = |k: &str, default: f64| -> Result<f64, ParseError> {
        match get(k) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{k} expects a number, got {v:?}"))),
        }
    };
    match cmd.as_str() {
        "workloads" => Ok(Command::Workloads),
        "tune" => {
            let beta = num("beta", 0.5)?;
            if !(0.0..=1.0).contains(&beta) {
                return Err(ParseError(format!("--beta must lie in [0, 1], got {beta}")));
            }
            Ok(Command::Tune {
                task: req_task()?,
                beta,
                budget: num("budget", 20.0)? as usize,
                seed: num("seed", 0.0)? as u64,
                no_safety: switches.contains(&"no-safety".to_string()),
                no_subspace: switches.contains(&"no-subspace".to_string()),
                no_agd: switches.contains(&"no-agd".to_string()),
                sparse_gp: switches.contains(&"sparse-gp".to_string()),
                out: get("out"),
                events: get("events"),
                fault_profile: get("fault-profile"),
                trace: get("trace"),
                corpus: get("corpus"),
            })
        }
        "tune-fleet" => {
            let opt_usize = |k: &str| -> Result<Option<usize>, ParseError> {
                match get(k) {
                    None => Ok(None),
                    Some(v) => v
                        .parse::<usize>()
                        .map(Some)
                        .map_err(|_| ParseError(format!("--{k} expects a count, got {v:?}"))),
                }
            };
            Ok(Command::TuneFleet {
                tasks: num("tasks", 50.0)? as usize,
                budget: num("budget", 5.0)? as usize,
                shards: opt_usize("shards")?,
                threads: opt_usize("threads")?,
                seed: num("seed", 0.0)? as u64,
                sparse_gp: switches.contains(&"sparse-gp".to_string()),
                events: get("events"),
                trace: get("trace"),
                prom: get("prom"),
                corpus: get("corpus"),
            })
        }
        "tune-serve" => {
            let beta = num("beta", 0.5)?;
            if !(0.0..=1.0).contains(&beta) {
                return Err(ParseError(format!("--beta must lie in [0, 1], got {beta}")));
            }
            let sync = get("sync");
            if let Some(s) = &sync {
                if otune_core::telemetry::SyncPolicy::parse(s).is_none() {
                    return Err(ParseError(format!(
                        "--sync expects every|batch:N|barrier, got {s:?}"
                    )));
                }
            }
            Ok(Command::TuneServe {
                journal: get("journal")
                    .ok_or_else(|| ParseError("missing required --journal FILE".into()))?,
                tasks: num("tasks", 4.0)? as usize,
                budget: num("budget", 8.0)? as usize,
                seed: num("seed", 42.0)? as u64,
                beta,
                max_retries: num("max-retries", 3.0)? as usize,
                checkpoint_every: num("checkpoint-every", 2.0)? as u64,
                fault_profile: get("fault-profile"),
                events: get("events"),
                auto: switches.contains(&"auto".to_string()),
                sync,
                full_every: num("full-every", 0.0)? as u64,
            })
        }
        "jobs" => {
            let journal_dir = get("journal-dir")
                .ok_or_else(|| ParseError("missing required --journal-dir DIR".into()))?;
            let action = match action.expect("jobs action parsed above") {
                "list" => JobsAction::List,
                "gc" => JobsAction::Gc {
                    keep: num("keep", 3.0)? as usize,
                },
                _ => JobsAction::Compact,
            };
            Ok(Command::Jobs {
                action,
                journal_dir,
            })
        }
        "corpus" => {
            let file =
                get("file").ok_or_else(|| ParseError("missing required --file FILE".into()))?;
            let action = match action.expect("corpus action parsed above") {
                "build" => CorpusAction::Build {
                    tasks: num("tasks", 16.0)? as usize,
                    budget: num("budget", 5.0)? as usize,
                    seed: num("seed", 0.0)? as u64,
                },
                "stats" => CorpusAction::Stats,
                _ => CorpusAction::Query {
                    task: req_task()?,
                    k: num("k", 3.0)? as usize,
                },
            };
            Ok(Command::Corpus { action, file })
        }
        "compare" => Ok(Command::Compare {
            task: req_task()?,
            budget: num("budget", 30.0)? as usize,
            seeds: num("seeds", 2.0)? as u64,
        }),
        "importance" => Ok(Command::Importance {
            task: req_task()?,
            samples: num("samples", 150.0)? as usize,
        }),
        "events" => Ok(Command::Events {
            file: get("file").ok_or_else(|| ParseError("missing required --file FILE".into()))?,
            task: get("task"),
            kind: get("kind"),
        }),
        "stats" => {
            let json = switches.contains(&"json".to_string());
            let prom = switches.contains(&"prom".to_string());
            if json && prom {
                return Err(ParseError(
                    "--json and --prom are mutually exclusive".into(),
                ));
            }
            Ok(Command::Stats {
                file: get("file")
                    .ok_or_else(|| ParseError("missing required --file FILE".into()))?,
                json,
                prom,
            })
        }
        "trace" => Ok(Command::Trace {
            file: get("file").ok_or_else(|| ParseError("missing required --file FILE".into()))?,
            out: get("out"),
        }),
        "top" => Ok(Command::Top {
            file: get("file").ok_or_else(|| ParseError("missing required --file FILE".into()))?,
            watch: match get("watch") {
                None => None,
                Some(v) => Some(
                    v.parse::<f64>()
                        .map_err(|_| ParseError(format!("--watch expects seconds, got {v:?}")))?,
                ),
            },
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!(
            "unknown subcommand {other:?}; try `otune help`"
        ))),
    }
}

/// Split `--key value` pairs and boolean `--switch` flags.
fn split_flags(
    args: &[String],
    switch_names: &[&str],
) -> Result<(HashMap<String, String>, Vec<String>), ParseError> {
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(key) = arg.strip_prefix("--") else {
            return Err(ParseError(format!(
                "unexpected positional argument {arg:?}"
            )));
        };
        if switch_names.contains(&key) {
            switches.push(key.to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| ParseError(format!("--{key} expects a value")))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Ok((flags, switches))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_tune_with_defaults() {
        let cmd = parse_args(&argv("tune --task terasort")).unwrap();
        assert_eq!(
            cmd,
            Command::Tune {
                task: "terasort".into(),
                beta: 0.5,
                budget: 20,
                seed: 0,
                no_safety: false,
                no_subspace: false,
                no_agd: false,
                sparse_gp: false,
                out: None,
                events: None,
                fault_profile: None,
                trace: None,
                corpus: None,
            }
        );
    }

    #[test]
    fn parses_sparse_gp_switch() {
        match parse_args(&argv("tune --task terasort --sparse-gp")).unwrap() {
            Command::Tune { sparse_gp, .. } => assert!(sparse_gp),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&argv("tune-fleet --sparse-gp --tasks 4")).unwrap() {
            Command::TuneFleet {
                sparse_gp, tasks, ..
            } => {
                assert!(sparse_gp);
                assert_eq!(tasks, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_tune_with_everything() {
        let cmd = parse_args(&argv(
            "tune --task kmeans --beta 1 --budget 30 --seed 7 --no-agd --out h.json --events e.jsonl --fault-profile oom:0.1,tmax:90 --trace t.json",
        ))
        .unwrap();
        match cmd {
            Command::Tune {
                task,
                beta,
                budget,
                seed,
                no_agd,
                no_safety,
                out,
                events,
                fault_profile,
                trace,
                ..
            } => {
                assert_eq!(task, "kmeans");
                assert_eq!(beta, 1.0);
                assert_eq!(budget, 30);
                assert_eq!(seed, 7);
                assert!(no_agd);
                assert!(!no_safety);
                assert_eq!(out.as_deref(), Some("h.json"));
                assert_eq!(events.as_deref(), Some("e.jsonl"));
                assert_eq!(fault_profile.as_deref(), Some("oom:0.1,tmax:90"));
                assert_eq!(trace.as_deref(), Some("t.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn events_and_stats_parse() {
        assert_eq!(
            parse_args(&argv(
                "events --file run.jsonl --task wc --kind SuggestionMade"
            ))
            .unwrap(),
            Command::Events {
                file: "run.jsonl".into(),
                task: Some("wc".into()),
                kind: Some("SuggestionMade".into()),
            }
        );
        assert_eq!(
            parse_args(&argv("events --file run.jsonl")).unwrap(),
            Command::Events {
                file: "run.jsonl".into(),
                task: None,
                kind: None
            }
        );
        assert_eq!(
            parse_args(&argv("stats --file run.jsonl")).unwrap(),
            Command::Stats {
                file: "run.jsonl".into(),
                json: false,
                prom: false,
            }
        );
        assert!(parse_args(&argv("events")).is_err());
        assert!(parse_args(&argv("stats")).is_err());
    }

    #[test]
    fn stats_modes_trace_and_top_parse() {
        assert_eq!(
            parse_args(&argv("stats --file m.json --json")).unwrap(),
            Command::Stats {
                file: "m.json".into(),
                json: true,
                prom: false,
            }
        );
        assert_eq!(
            parse_args(&argv("stats --file m.json --prom")).unwrap(),
            Command::Stats {
                file: "m.json".into(),
                json: false,
                prom: true,
            }
        );
        assert!(parse_args(&argv("stats --file m.json --json --prom")).is_err());
        assert_eq!(
            parse_args(&argv("trace --file run.jsonl --out t.json")).unwrap(),
            Command::Trace {
                file: "run.jsonl".into(),
                out: Some("t.json".into()),
            }
        );
        assert_eq!(
            parse_args(&argv("top --file run.jsonl")).unwrap(),
            Command::Top {
                file: "run.jsonl".into(),
                watch: None,
            }
        );
        assert_eq!(
            parse_args(&argv("top --file run.jsonl --watch 2")).unwrap(),
            Command::Top {
                file: "run.jsonl".into(),
                watch: Some(2.0),
            }
        );
        assert!(parse_args(&argv("trace")).is_err());
        assert!(parse_args(&argv("top --file x --watch soon")).is_err());
    }

    #[test]
    fn rejects_bad_beta_and_missing_task() {
        assert!(parse_args(&argv("tune --task x --beta 1.5")).is_err());
        assert!(parse_args(&argv("tune")).is_err());
        assert!(parse_args(&argv("compare")).is_err());
    }

    #[test]
    fn rejects_unknown_subcommand_and_positionals() {
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("tune --task x stray")).is_err());
        assert!(parse_args(&argv("tune --task")).is_err());
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_tune_fleet() {
        assert_eq!(
            parse_args(&argv("tune-fleet")).unwrap(),
            Command::TuneFleet {
                tasks: 50,
                budget: 5,
                shards: None,
                threads: None,
                seed: 0,
                sparse_gp: false,
                events: None,
                trace: None,
                prom: None,
                corpus: None,
            }
        );
        assert_eq!(
            parse_args(&argv(
                "tune-fleet --tasks 200 --budget 3 --shards 4 --threads 2 --seed 9 --events f.jsonl --trace t.json --prom m.prom"
            ))
            .unwrap(),
            Command::TuneFleet {
                tasks: 200,
                budget: 3,
                shards: Some(4),
                threads: Some(2),
                seed: 9,
                sparse_gp: false,
                events: Some("f.jsonl".into()),
                trace: Some("t.json".into()),
                prom: Some("m.prom".into()),
                corpus: None,
            }
        );
        assert!(parse_args(&argv("tune-fleet --shards x")).is_err());
    }

    #[test]
    fn parses_corpus_flag_and_subcommand() {
        match parse_args(&argv("tune --task terasort --corpus c.jsonl")).unwrap() {
            Command::Tune { corpus, .. } => assert_eq!(corpus.as_deref(), Some("c.jsonl")),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&argv("tune-fleet --tasks 8 --corpus c.jsonl")).unwrap() {
            Command::TuneFleet { corpus, .. } => assert_eq!(corpus.as_deref(), Some("c.jsonl")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_args(&argv(
                "corpus build --file c.jsonl --tasks 8 --budget 3 --seed 5"
            ))
            .unwrap(),
            Command::Corpus {
                action: CorpusAction::Build {
                    tasks: 8,
                    budget: 3,
                    seed: 5,
                },
                file: "c.jsonl".into(),
            }
        );
        assert_eq!(
            parse_args(&argv("corpus stats --file c.jsonl")).unwrap(),
            Command::Corpus {
                action: CorpusAction::Stats,
                file: "c.jsonl".into(),
            }
        );
        assert_eq!(
            parse_args(&argv("corpus query --file c.jsonl --task terasort --k 5")).unwrap(),
            Command::Corpus {
                action: CorpusAction::Query {
                    task: "terasort".into(),
                    k: 5,
                },
                file: "c.jsonl".into(),
            }
        );
        assert!(parse_args(&argv("corpus")).is_err());
        assert!(parse_args(&argv("corpus frobnicate --file c.jsonl")).is_err());
        assert!(parse_args(&argv("corpus build")).is_err());
        assert!(parse_args(&argv("corpus query --file c.jsonl")).is_err());
    }

    #[test]
    fn parses_tune_serve() {
        assert_eq!(
            parse_args(&argv("tune-serve --journal j.jsonl")).unwrap(),
            Command::TuneServe {
                journal: "j.jsonl".into(),
                tasks: 4,
                budget: 8,
                seed: 42,
                beta: 0.5,
                max_retries: 3,
                checkpoint_every: 2,
                fault_profile: None,
                events: None,
                auto: false,
                sync: None,
                full_every: 0,
            }
        );
        assert_eq!(
            parse_args(&argv(
                "tune-serve --journal j.jsonl --tasks 3 --budget 6 --seed 9 --beta 1 \
                 --max-retries 2 --checkpoint-every 3 --fault-profile oom:0.1 \
                 --events e.jsonl --auto"
            ))
            .unwrap(),
            Command::TuneServe {
                journal: "j.jsonl".into(),
                tasks: 3,
                budget: 6,
                seed: 9,
                beta: 1.0,
                max_retries: 2,
                checkpoint_every: 3,
                fault_profile: Some("oom:0.1".into()),
                events: Some("e.jsonl".into()),
                auto: true,
                sync: None,
                full_every: 0,
            }
        );
        assert!(parse_args(&argv("tune-serve")).is_err());
        assert!(parse_args(&argv("tune-serve --journal j --beta 2")).is_err());
    }

    #[test]
    fn parses_tune_serve_durability_flags() {
        match parse_args(&argv(
            "tune-serve --journal j.jsonl --sync batch:8 --full-every 4",
        ))
        .unwrap()
        {
            Command::TuneServe {
                sync, full_every, ..
            } => {
                assert_eq!(sync.as_deref(), Some("batch:8"));
                assert_eq!(full_every, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&argv("tune-serve --journal j.jsonl")).unwrap() {
            Command::TuneServe {
                sync, full_every, ..
            } => {
                assert_eq!(sync, None, "defaults to the environment");
                assert_eq!(full_every, 0, "full checkpoints by default");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&argv("tune-serve --journal j --sync sometimes")).is_err());
        assert!(parse_args(&argv("tune-serve --journal j --sync batch:0")).is_err());
    }

    #[test]
    fn parses_jobs_subcommands() {
        assert_eq!(
            parse_args(&argv("jobs list --journal-dir /var/jobs")).unwrap(),
            Command::Jobs {
                action: JobsAction::List,
                journal_dir: "/var/jobs".into(),
            }
        );
        assert_eq!(
            parse_args(&argv("jobs gc --journal-dir d --keep 5")).unwrap(),
            Command::Jobs {
                action: JobsAction::Gc { keep: 5 },
                journal_dir: "d".into(),
            }
        );
        assert_eq!(
            parse_args(&argv("jobs gc --journal-dir d")).unwrap(),
            Command::Jobs {
                action: JobsAction::Gc { keep: 3 },
                journal_dir: "d".into(),
            }
        );
        assert_eq!(
            parse_args(&argv("jobs compact --journal-dir d")).unwrap(),
            Command::Jobs {
                action: JobsAction::Compact,
                journal_dir: "d".into(),
            }
        );
        assert!(parse_args(&argv("jobs")).is_err());
        assert!(parse_args(&argv("jobs frobnicate --journal-dir d")).is_err());
        assert!(parse_args(&argv("jobs list")).is_err());
    }

    #[test]
    fn compare_and_importance() {
        assert_eq!(
            parse_args(&argv("compare --task sort --budget 10 --seeds 3")).unwrap(),
            Command::Compare {
                task: "sort".into(),
                budget: 10,
                seeds: 3
            }
        );
        assert_eq!(
            parse_args(&argv("importance --task bayes")).unwrap(),
            Command::Importance {
                task: "bayes".into(),
                samples: 150
            }
        );
    }
}
