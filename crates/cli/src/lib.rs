//! The `otune` command-line tool.
//!
//! Subcommands (run against the built-in Spark simulator, so everything
//! works out of the box):
//!
//! * `otune workloads` — list the available HiBench-style workloads.
//! * `otune tune --task <name> [--beta B] [--budget N] [--seed S]
//!   [--no-safety] [--no-subspace] [--no-agd] [--out FILE]` — run one
//!   online tuning session, print the trace and the best configuration,
//!   optionally dump the runhistory as JSON.
//! * `otune compare --task <name> [--budget N] [--seeds K]` — ours vs the
//!   six baselines on one task.
//! * `otune importance --task <name> [--samples N]` — fANOVA top-10
//!   parameters for one workload.
//!
//! The argument parser is intentionally tiny (no external dependency);
//! [`parse_args`] is exposed for testing.

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, ParseError};
