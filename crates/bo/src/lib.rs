//! Bayesian-optimization engine for online Spark tuning.
//!
//! Components implementing §3.3 and §4 of the paper:
//!
//! * [`acquisition`] — Expected Improvement (Eq. 3), probability of
//!   feasibility (Eq. 7), and EI-with-Constraints (Eq. 6);
//! * [`safe`] — the GP upper-bound safe region of Eq. 8
//!   (`u(x) = μ(x) + γσ(x) ≤ threshold`);
//! * [`subspace`] — fANOVA-ranked adaptive sub-space generation with
//!   TuRBO-style success/failure counters (§4.1);
//! * [`agd`] — approximate gradient descent on the generalized objective
//!   (Eqs. 9–11);
//! * [`optimizer`] — candidate generation and constrained acquisition
//!   maximization over the safe sub-space;
//! * [`surrogate`] — glue for fitting mixed-kernel GPs on observed
//!   configurations plus workload context.
//!
//! The crate is policy-free: the OnlineTune controller in `otune-core`
//! (and the baselines in `otune-baselines`) assemble these pieces.

pub mod acquisition;
pub mod agd;
pub mod observation;
pub mod optimizer;
pub mod safe;
pub mod store;
pub mod subspace;
pub mod surrogate;

pub use acquisition::{
    eic, expected_improvement, lower_confidence_bound, prob_below, probability_of_improvement,
};
pub use agd::Agd;
pub use observation::{best_observation, Observation};
pub use optimizer::{
    maximize_eic, maximize_eic_with, AcquisitionChoice, CandidateParams, EicObjective,
};
pub use safe::SafeRegion;
pub use store::{history_fingerprint, observation_fingerprint, SurrogateCache, SurrogateStore};
pub use subspace::{AdaptiveSubspace, SubspaceParams};
pub use surrogate::{
    fit_surrogate, fit_surrogate_pooled, fit_surrogate_with, surrogate_kinds, Predictor,
    SurrogateInput,
};
