//! The GP safe region of §4.2.
//!
//! A configuration is *safe* at iteration `t` when the runtime surrogate's
//! upper bound `u_t(x) = μ_t(x) + γ·σ_t(x)` (Eq. 8) does not exceed the
//! constraint threshold — i.e. the configuration is expected to satisfy the
//! constraint even in the pessimistic case. The final safe region is the
//! intersection of per-constraint regions; intersection is just `all()`
//! over [`SafeRegion::is_safe`] checks.

use otune_gp::GaussianProcess;
use otune_pool::Pool;

/// One constraint's safe region.
#[derive(Debug)]
pub struct SafeRegion<'a> {
    surrogate: &'a GaussianProcess,
    threshold: f64,
    gamma: f64,
}

impl<'a> SafeRegion<'a> {
    /// Build a safe region from a constraint-metric surrogate, the metric's
    /// upper bound, and the pessimism factor `γ ∈ (0, 1]`.
    pub fn new(surrogate: &'a GaussianProcess, threshold: f64, gamma: f64) -> Self {
        debug_assert!(gamma > 0.0 && gamma <= 1.0, "paper uses γ ∈ (0, 1]");
        SafeRegion {
            surrogate,
            threshold,
            gamma,
        }
    }

    /// Upper confidence bound `u(x) = μ(x) + γσ(x)`.
    pub fn upper_bound(&self, x: &[f64]) -> f64 {
        let (mean, var) = self.surrogate.predict(x);
        mean + self.gamma * var.max(0.0).sqrt()
    }

    /// Whether `x` lies in the safe region.
    pub fn is_safe(&self, x: &[f64]) -> bool {
        self.upper_bound(x) <= self.threshold
    }

    /// How far `x` exceeds the safe bound (0 when safe) — used to pick the
    /// least-unsafe candidate when the safe region is empty.
    pub fn violation(&self, x: &[f64]) -> f64 {
        (self.upper_bound(x) - self.threshold).max(0.0)
    }

    /// [`SafeRegion::violation`] over many points via the surrogate's
    /// batched prediction path; identical to per-point calls.
    pub fn violations(&self, xs: &[Vec<f64>], pool: &Pool) -> Vec<f64> {
        self.surrogate
            .predict_batch_pooled(xs, pool)
            .into_iter()
            .map(|(mean, var)| self.violation_from(mean, var))
            .collect()
    }

    /// [`SafeRegion::violation`] from an already computed posterior —
    /// lets callers that batched the surrogate's predictions themselves
    /// (to reuse them elsewhere) apply the same bound arithmetic.
    pub fn violation_from(&self, mean: f64, var: f64) -> f64 {
        let ub = mean + self.gamma * var.max(0.0).sqrt();
        (ub - self.threshold).max(0.0)
    }

    /// The constraint surrogate backing this region.
    pub fn surrogate(&self) -> &'a GaussianProcess {
        self.surrogate
    }

    /// The constraint threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_gp::{FeatureKind, GpConfig};

    fn runtime_gp() -> GaussianProcess {
        // Runtime rises steeply with x: observations along a line.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| 100.0 + 400.0 * v[0]).collect();
        GaussianProcess::fit(vec![FeatureKind::Numeric], x, &y, GpConfig::default()).unwrap()
    }

    #[test]
    fn low_runtime_zone_is_safe_high_is_not() {
        let gp = runtime_gp();
        let region = SafeRegion::new(&gp, 300.0, 1.0);
        assert!(region.is_safe(&[0.1]));
        assert!(!region.is_safe(&[0.9]));
    }

    #[test]
    fn upper_bound_exceeds_mean() {
        let gp = runtime_gp();
        let region = SafeRegion::new(&gp, 300.0, 1.0);
        let (mean, _) = gp.predict(&[0.5]);
        assert!(region.upper_bound(&[0.5]) >= mean);
    }

    #[test]
    fn smaller_gamma_is_less_conservative() {
        let gp = runtime_gp();
        let bold = SafeRegion::new(&gp, 300.0, 0.2);
        let cautious = SafeRegion::new(&gp, 300.0, 1.0);
        // Everywhere, the cautious bound dominates the bold one.
        for i in 0..20 {
            let x = [i as f64 / 19.0];
            assert!(cautious.upper_bound(&x) >= bold.upper_bound(&x));
        }
    }

    #[test]
    fn violation_is_zero_inside() {
        let gp = runtime_gp();
        let region = SafeRegion::new(&gp, 300.0, 1.0);
        assert_eq!(region.violation(&[0.05]), 0.0);
        assert!(region.violation(&[0.95]) > 0.0);
        assert_eq!(region.threshold(), 300.0);
    }
}
