//! Observed configuration evaluations.

use otune_space::Configuration;
use serde::{Deserialize, Serialize};

/// One evaluated configuration: the unit of runhistory the surrogates are
/// trained on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Observation {
    /// The evaluated configuration.
    pub config: Configuration,
    /// Objective value `f(x)` (lower is better).
    pub objective: f64,
    /// Observed runtime `T(x)` in seconds (the safety metric).
    pub runtime: f64,
    /// Analytic resource amount `R(x)`.
    pub resource: f64,
    /// Workload context at evaluation time (data size and/or calendar
    /// features), appended to the encoded configuration for the surrogate.
    pub context: Vec<f64>,
}

impl Observation {
    /// Whether this observation satisfies `runtime ≤ t_max` and
    /// `resource ≤ r_max` (`None` disables a bound).
    pub fn is_feasible(&self, t_max: Option<f64>, r_max: Option<f64>) -> bool {
        t_max.is_none_or(|t| self.runtime <= t) && r_max.is_none_or(|r| self.resource <= r)
    }
}

/// The best (lowest-objective) feasible observation, falling back to the
/// best overall when nothing is feasible.
pub fn best_observation(
    obs: &[Observation],
    t_max: Option<f64>,
    r_max: Option<f64>,
) -> Option<&Observation> {
    let feasible = obs
        .iter()
        .filter(|o| o.is_feasible(t_max, r_max))
        .min_by(|a, b| {
            a.objective
                .partial_cmp(&b.objective)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    feasible.or_else(|| {
        obs.iter().min_by(|a, b| {
            a.objective
                .partial_cmp(&b.objective)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::ParamValue;

    fn obs(objective: f64, runtime: f64, resource: f64) -> Observation {
        Observation {
            config: Configuration::new(vec![ParamValue::Int(1)]),
            objective,
            runtime,
            resource,
            context: vec![],
        }
    }

    #[test]
    fn feasibility_bounds() {
        let o = obs(1.0, 100.0, 50.0);
        assert!(o.is_feasible(None, None));
        assert!(o.is_feasible(Some(100.0), Some(50.0)));
        assert!(!o.is_feasible(Some(99.0), None));
        assert!(!o.is_feasible(None, Some(49.0)));
    }

    #[test]
    fn best_prefers_feasible() {
        let all = vec![
            obs(1.0, 500.0, 10.0),
            obs(5.0, 50.0, 10.0),
            obs(3.0, 60.0, 10.0),
        ];
        let best = best_observation(&all, Some(100.0), None).unwrap();
        assert_eq!(best.objective, 3.0, "lowest objective among feasible");
    }

    #[test]
    fn best_falls_back_when_nothing_feasible() {
        let all = vec![obs(2.0, 500.0, 10.0), obs(4.0, 600.0, 10.0)];
        let best = best_observation(&all, Some(100.0), None).unwrap();
        assert_eq!(best.objective, 2.0);
    }

    #[test]
    fn empty_history() {
        assert!(best_observation(&[], None, None).is_none());
    }
}
