//! Observed configuration evaluations.

use otune_space::Configuration;
use serde::{Deserialize, Serialize};

/// One evaluated configuration: the unit of runhistory the surrogates are
/// trained on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The evaluated configuration.
    pub config: Configuration,
    /// Objective value `f(x)` (lower is better).
    pub objective: f64,
    /// Observed runtime `T(x)` in seconds (the safety metric).
    pub runtime: f64,
    /// Analytic resource amount `R(x)`.
    pub resource: f64,
    /// Workload context at evaluation time (data size and/or calendar
    /// features), appended to the encoded configuration for the surrogate.
    pub context: Vec<f64>,
    /// Whether the run behind this observation failed (OOM, `T_max` kill).
    /// Failed runs are recorded *censored*: `runtime` holds the penalty
    /// value, never the (unknowable) true runtime, and the observation is
    /// unconditionally infeasible for the safe region and the incumbent.
    #[serde(default)]
    pub failed: bool,
}

impl Observation {
    /// Whether this observation satisfies `runtime ≤ t_max` and
    /// `resource ≤ r_max` (`None` disables a bound). Failed runs are
    /// never feasible, regardless of bounds.
    pub fn is_feasible(&self, t_max: Option<f64>, r_max: Option<f64>) -> bool {
        !self.failed
            && t_max.is_none_or(|t| self.runtime <= t)
            && r_max.is_none_or(|r| self.resource <= r)
    }
}

/// The best (lowest-objective) feasible observation, falling back to the
/// best overall when nothing is feasible.
pub fn best_observation(
    obs: &[Observation],
    t_max: Option<f64>,
    r_max: Option<f64>,
) -> Option<&Observation> {
    let feasible = obs
        .iter()
        .filter(|o| o.is_feasible(t_max, r_max))
        .min_by(|a, b| {
            a.objective
                .partial_cmp(&b.objective)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    feasible.or_else(|| {
        obs.iter().min_by(|a, b| {
            a.objective
                .partial_cmp(&b.objective)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::ParamValue;

    fn obs(objective: f64, runtime: f64, resource: f64) -> Observation {
        Observation {
            failed: false,
            config: Configuration::new(vec![ParamValue::Int(1)]),
            objective,
            runtime,
            resource,
            context: vec![],
        }
    }

    #[test]
    fn feasibility_bounds() {
        let o = obs(1.0, 100.0, 50.0);
        assert!(o.is_feasible(None, None));
        assert!(o.is_feasible(Some(100.0), Some(50.0)));
        assert!(!o.is_feasible(Some(99.0), None));
        assert!(!o.is_feasible(None, Some(49.0)));
    }

    #[test]
    fn failed_runs_are_never_feasible() {
        let mut o = obs(1.0, 10.0, 5.0);
        o.failed = true;
        assert!(!o.is_feasible(None, None), "failed beats missing bounds");
        assert!(!o.is_feasible(Some(100.0), Some(100.0)));
        // A failed incumbent never wins over a feasible one.
        let all = vec![o, obs(9.0, 10.0, 5.0)];
        let best = best_observation(&all, None, None).unwrap();
        assert_eq!(best.objective, 9.0);
    }

    #[test]
    fn failed_flag_defaults_to_false_in_old_json() {
        let o = obs(1.0, 10.0, 5.0);
        let mut json = serde_json::to_string(&o).unwrap();
        assert!(json.contains("\"failed\""));
        // Strip the field to emulate pre-fault-injection history files.
        json = json.replace(",\"failed\":false", "");
        let back: Observation = serde_json::from_str(&json).unwrap();
        assert!(!back.failed);
    }

    #[test]
    fn best_prefers_feasible() {
        let all = vec![
            obs(1.0, 500.0, 10.0),
            obs(5.0, 50.0, 10.0),
            obs(3.0, 60.0, 10.0),
        ];
        let best = best_observation(&all, Some(100.0), None).unwrap();
        assert_eq!(best.objective, 3.0, "lowest objective among feasible");
    }

    #[test]
    fn best_falls_back_when_nothing_feasible() {
        let all = vec![obs(2.0, 500.0, 10.0), obs(4.0, 600.0, 10.0)];
        let best = best_observation(&all, Some(100.0), None).unwrap();
        assert_eq!(best.objective, 2.0);
    }

    #[test]
    fn empty_history() {
        assert!(best_observation(&[], None, None).is_none());
    }
}
