//! Cross-iteration surrogate cache keyed on a history fingerprint.
//!
//! The online paradigm appends one observation per periodic execution, so
//! the runhistory a `suggest` call sees is almost always the previous
//! history plus one row. [`SurrogateStore`] exploits that: each fitted GP
//! is kept across calls together with a per-observation fingerprint of
//! the encoded inputs and the (already transformed) targets. When the new
//! history is a strict extension, the cached model absorbs only the new
//! rows through [`GaussianProcess::update`] — O(n²) instead of a full
//! O(C·n³) hyperparameter search. When fingerprints diverge — the history
//! was edited, truncated, or an upstream transform rewrote an old target —
//! the cache falls back to a full fit, warm-started from the previous
//! hyperparameter winner.

use crate::observation::Observation;
use crate::surrogate::{encode_with_context, surrogate_kinds, SurrogateInput};
use otune_gp::{
    select_local_subset, GaussianProcess, GpConfig, GpError, IncrementalPolicy, SparseGpConfig,
    UpdateOutcome,
};
use otune_pool::Pool;
use otune_space::ConfigSpace;
use otune_telemetry::{metric, Telemetry};
use std::sync::Arc;

fn fnv_mix(h: &mut u64, bits: u64) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
        *h ^= (bits >> shift) & 0xff;
        *h = h.wrapping_mul(PRIME);
    }
}

/// FNV-1a over one observation exactly as the surrogate sees it: the
/// encoded configuration + context vector, then the modeled target. Any
/// change to an old observation — including a transform change upstream
/// that rewrites its target — changes its fingerprint and invalidates
/// the cached fit.
pub fn observation_fingerprint(space: &ConfigSpace, o: &Observation, input: SurrogateInput) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in encode_with_context(space, &o.config, &o.context) {
        fnv_mix(&mut h, v.to_bits());
    }
    let y = match input {
        SurrogateInput::Objective => o.objective,
        SurrogateInput::Runtime => o.runtime,
    };
    fnv_mix(&mut h, y.to_bits());
    h
}

/// Order-sensitive fingerprint of a whole history: folds the per-observation
/// fingerprints, so any edit, reorder, or truncation changes the result.
pub fn history_fingerprint(space: &ConfigSpace, obs: &[Observation], input: SurrogateInput) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for o in obs {
        fnv_mix(&mut h, observation_fingerprint(space, o, input));
    }
    h
}

/// A persistent fitted surrogate for one metric, reused across
/// `suggest`/`observe` cycles while the history only grows.
#[derive(Debug, Clone)]
pub struct SurrogateCache {
    input: SurrogateInput,
    policy: IncrementalPolicy,
    sparse: Option<SparseGpConfig>,
    gp: Option<Arc<GaussianProcess>>,
    /// Per-observation fingerprints of the history the cached model was
    /// fitted on, in history order.
    fps: Vec<u64>,
    /// Cached local-subset model for large histories, keyed on the
    /// fingerprint of the selected rows plus the selection center.
    sparse_gp: Option<Arc<GaussianProcess>>,
    sparse_key: u64,
    /// Selection changes absorbed since the last full hyper search on
    /// the sparse model (re-searched every `policy.refit_period`).
    sparse_since_search: usize,
}

impl SurrogateCache {
    /// An empty cache for the chosen metric.
    pub fn new(input: SurrogateInput, policy: IncrementalPolicy) -> Self {
        SurrogateCache {
            input,
            policy,
            sparse: None,
            gp: None,
            fps: Vec::new(),
            sparse_gp: None,
            sparse_key: 0,
            sparse_since_search: 0,
        }
    }

    /// Enable (or disable) the local-subset sparse approximation for
    /// histories past its threshold. Takes effect on the next `prepare`.
    pub fn set_sparse(&mut self, sparse: Option<SparseGpConfig>) {
        self.sparse = sparse;
    }

    /// The maintenance policy this cache applies.
    pub fn policy(&self) -> &IncrementalPolicy {
        &self.policy
    }

    /// The cached fitted model, if any.
    pub fn surrogate(&self) -> Option<&Arc<GaussianProcess>> {
        self.gp.as_ref()
    }

    /// Drop all cached state (the next `prepare` runs a full fit).
    pub fn clear(&mut self) {
        self.gp = None;
        self.fps.clear();
        self.sparse_gp = None;
        self.sparse_key = 0;
        self.sparse_since_search = 0;
    }

    fn target(&self, o: &Observation) -> f64 {
        match self.input {
            SurrogateInput::Objective => o.objective,
            SurrogateInput::Runtime => o.runtime,
        }
    }

    /// Return a surrogate fitted on exactly `obs`, reusing cached state
    /// whenever `obs` extends the previously seen history.
    pub fn prepare(
        &mut self,
        space: &ConfigSpace,
        obs: &[Observation],
        seed: u64,
        telemetry: &Telemetry,
        pool: &Pool,
    ) -> Result<Arc<GaussianProcess>, GpError> {
        self.prepare_with_center(space, obs, seed, None, telemetry, pool)
    }

    /// [`Self::prepare`] with a selection center for the sparse path.
    ///
    /// When the sparse approximation is enabled and `obs` exceeds its
    /// threshold, the model is fitted on the `subset_size` observations
    /// nearest `center` (the encoded incumbent) instead of the full
    /// history, and cached against the subset + center so unchanged
    /// iterations are pure hits. With sparse disabled, inactive, or no
    /// center available, this is exactly `prepare` — bit-for-bit.
    pub fn prepare_with_center(
        &mut self,
        space: &ConfigSpace,
        obs: &[Observation],
        seed: u64,
        center: Option<&[f64]>,
        telemetry: &Telemetry,
        pool: &Pool,
    ) -> Result<Arc<GaussianProcess>, GpError> {
        if obs.is_empty() {
            return Err(GpError::Empty);
        }
        if let (Some(sparse), Some(center)) = (self.sparse, center) {
            if sparse.activates(obs.len()) {
                return self.prepare_sparse(space, obs, seed, center, sparse, telemetry, pool);
            }
        }
        let fps: Vec<u64> = obs
            .iter()
            .map(|o| observation_fingerprint(space, o, self.input))
            .collect();

        let input = self.input;
        let policy = self.policy;
        if let Some(gp) = &mut self.gp {
            let n_cached = self.fps.len();
            if fps.len() >= n_cached && fps[..n_cached] == self.fps[..] {
                if fps.len() == n_cached {
                    telemetry.incr(metric::SURROGATE_CACHE_HITS);
                    return Ok(Arc::clone(gp));
                }
                // Append-only extension: absorb the new rows one by one.
                let _span = telemetry.span(metric::GP_FIT_S);
                let _trace = telemetry.trace_span("gp_update");
                let model = Arc::make_mut(gp);
                let cfg = GpConfig {
                    seed,
                    ..GpConfig::default()
                };
                let mut extended = true;
                for (o, &fp) in obs[n_cached..].iter().zip(&fps[n_cached..]) {
                    let x = encode_with_context(space, &o.config, &o.context);
                    let y = match input {
                        SurrogateInput::Objective => o.objective,
                        SurrogateInput::Runtime => o.runtime,
                    };
                    match model.update_traced(x, y, &policy, cfg, pool, telemetry) {
                        Ok(outcome) => {
                            telemetry.incr(match outcome {
                                UpdateOutcome::Incremental => metric::SURROGATE_INCREMENTAL_UPDATES,
                                UpdateOutcome::Refactored | UpdateOutcome::JitterInvalidated => {
                                    metric::SURROGATE_FULL_REFITS
                                }
                                UpdateOutcome::HyperSearch(_) => metric::GP_HYPER_SEARCHES,
                            });
                            self.fps.push(fp);
                        }
                        Err(_) => {
                            // Roll everything into a full fit below.
                            extended = false;
                            break;
                        }
                    }
                }
                if extended {
                    telemetry.incr(metric::SURROGATE_CACHE_HITS);
                    return Ok(Arc::clone(gp));
                }
            }
        }

        // Cache miss: the history was edited (or never seen). Run a full
        // fit, warm-started from the previous hyperparameter winner.
        telemetry.incr(metric::SURROGATE_CACHE_MISSES);
        let warm_hyper = self.gp.as_ref().map(|g| g.kernel().hyper);
        self.clear();
        let _span = telemetry.span(metric::GP_FIT_S);
        let _trace = telemetry.trace_span("gp_full_fit");
        let kinds = surrogate_kinds(space, obs[0].context.len());
        let x: Vec<Vec<f64>> = obs
            .iter()
            .map(|o| encode_with_context(space, &o.config, &o.context))
            .collect();
        let y: Vec<f64> = obs.iter().map(|o| self.target(o)).collect();
        let gp = GaussianProcess::fit_traced(
            kinds,
            x,
            &y,
            GpConfig {
                seed,
                warm_hyper,
                ..GpConfig::default()
            },
            pool,
            telemetry,
        )?;
        telemetry.incr(metric::GP_HYPER_SEARCHES);
        telemetry.add(metric::CHOL_JITTER_RETRIES, u64::from(gp.jitter_retries()));
        let gp = Arc::new(gp);
        self.gp = Some(Arc::clone(&gp));
        self.fps = fps;
        Ok(gp)
    }

    /// Local-subset fit for histories past the sparse threshold.
    ///
    /// The cache key folds the fingerprints of the *selected* rows with
    /// the center bits, so a suggest on an unchanged history and
    /// incumbent is a pure hit. When the selection shifts (new
    /// observation displaced a neighbour, or the incumbent moved), the
    /// subset is refitted warm-started at the previous hyperparameters;
    /// a full hyper search runs on the first activation and then every
    /// `policy.refit_period` selection changes, mirroring the
    /// incremental policy of the exact path.
    #[allow(clippy::too_many_arguments)]
    fn prepare_sparse(
        &mut self,
        space: &ConfigSpace,
        obs: &[Observation],
        seed: u64,
        center: &[f64],
        sparse: SparseGpConfig,
        telemetry: &Telemetry,
        pool: &Pool,
    ) -> Result<Arc<GaussianProcess>, GpError> {
        telemetry.incr(metric::SUBSET_GP_ACTIVATIONS);
        let kinds = surrogate_kinds(space, obs[0].context.len());
        let x: Vec<Vec<f64>> = obs
            .iter()
            .map(|o| encode_with_context(space, &o.config, &o.context))
            .collect();
        let idx = select_local_subset(&kinds, &x, center, sparse.subset_size);

        let mut key: u64 = 0xcbf2_9ce4_8422_2325;
        for &i in &idx {
            fnv_mix(
                &mut key,
                observation_fingerprint(space, &obs[i], self.input),
            );
        }
        for v in center {
            fnv_mix(&mut key, v.to_bits());
        }
        if let Some(gp) = &self.sparse_gp {
            if self.sparse_key == key {
                telemetry.incr(metric::SURROGATE_CACHE_HITS);
                return Ok(Arc::clone(gp));
            }
        }

        telemetry.incr(metric::SURROGATE_CACHE_MISSES);
        let warm_hyper = self.sparse_gp.as_ref().map(|g| g.kernel().hyper);
        let search = warm_hyper.is_none()
            || (self.policy.refit_period > 0
                && self.sparse_since_search + 1 >= self.policy.refit_period);
        let sub_x: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
        let sub_y: Vec<f64> = idx.iter().map(|&i| self.target(&obs[i])).collect();
        let _span = telemetry.span(metric::GP_FIT_S);
        let _trace = telemetry.trace_span("gp_sparse_fit");
        let gp = GaussianProcess::fit_traced(
            kinds,
            sub_x,
            &sub_y,
            GpConfig {
                seed,
                warm_hyper,
                optimize_hypers: search,
                ..GpConfig::default()
            },
            pool,
            telemetry,
        )?;
        if search {
            telemetry.incr(metric::GP_HYPER_SEARCHES);
            self.sparse_since_search = 0;
        } else {
            self.sparse_since_search += 1;
        }
        telemetry.add(metric::CHOL_JITTER_RETRIES, u64::from(gp.jitter_retries()));
        let gp = Arc::new(gp);
        self.sparse_gp = Some(Arc::clone(&gp));
        self.sparse_key = key;
        Ok(gp)
    }
}

/// The pair of persistent surrogates the generator needs each iteration:
/// runtime (safety/constraint) and generalized objective.
#[derive(Debug, Clone)]
pub struct SurrogateStore {
    runtime: SurrogateCache,
    objective: SurrogateCache,
}

impl SurrogateStore {
    /// Empty caches under the given maintenance policy.
    pub fn new(policy: IncrementalPolicy) -> Self {
        SurrogateStore {
            runtime: SurrogateCache::new(SurrogateInput::Runtime, policy),
            objective: SurrogateCache::new(SurrogateInput::Objective, policy),
        }
    }

    /// The runtime-metric cache.
    pub fn runtime(&self) -> &SurrogateCache {
        &self.runtime
    }

    /// The objective-metric cache.
    pub fn objective(&self) -> &SurrogateCache {
        &self.objective
    }

    /// Drop all cached state.
    pub fn clear(&mut self) {
        self.runtime.clear();
        self.objective.clear();
    }

    /// Enable (or disable) the local-subset sparse approximation on both
    /// caches. Takes effect on the next `prepare`.
    pub fn set_sparse(&mut self, sparse: Option<SparseGpConfig>) {
        self.runtime.set_sparse(sparse);
        self.objective.set_sparse(sparse);
    }

    /// Fitted `(runtime, objective)` surrogates for exactly `obs`.
    pub fn prepare(
        &mut self,
        space: &ConfigSpace,
        obs: &[Observation],
        seed: u64,
        telemetry: &Telemetry,
        pool: &Pool,
    ) -> Result<(Arc<GaussianProcess>, Arc<GaussianProcess>), GpError> {
        self.prepare_with_center(space, obs, seed, None, telemetry, pool)
    }

    /// [`Self::prepare`] with a sparse-selection center (the encoded
    /// incumbent). With sparse disabled or no center, identical to
    /// `prepare`.
    pub fn prepare_with_center(
        &mut self,
        space: &ConfigSpace,
        obs: &[Observation],
        seed: u64,
        center: Option<&[f64]>,
        telemetry: &Telemetry,
        pool: &Pool,
    ) -> Result<(Arc<GaussianProcess>, Arc<GaussianProcess>), GpError> {
        let runtime = self
            .runtime
            .prepare_with_center(space, obs, seed, center, telemetry, pool)?;
        let objective = self
            .objective
            .prepare_with_center(space, obs, seed, center, telemetry, pool)?;
        Ok((runtime, objective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{ConfigSpace, Parameter};
    use rand::{rngs::StdRng, SeedableRng};

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("a", 0, 10, 5),
            Parameter::float("b", 0.0, 1.0, 0.5),
        ])
    }

    fn make_obs(space: &ConfigSpace, n: usize) -> Vec<Observation> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|i| {
                let config = space.sample(&mut rng);
                let a = config[0].as_int().unwrap() as f64;
                let b = config[1].as_float().unwrap();
                Observation {
                    failed: false,
                    objective: (a - 4.0).powi(2) + b,
                    runtime: 50.0 + a * 3.0 - b,
                    resource: 1.0,
                    context: vec![i as f64 / n as f64],
                    config,
                }
            })
            .collect()
    }

    fn registryd() -> Telemetry {
        Telemetry::new(Box::new(otune_telemetry::NullSink))
    }

    #[test]
    fn identical_history_is_a_pure_hit() {
        let s = space();
        let obs = make_obs(&s, 8);
        let telemetry = registryd();
        let mut cache =
            SurrogateCache::new(SurrogateInput::Objective, IncrementalPolicy::default());
        let a = cache
            .prepare(&s, &obs, 0, &telemetry, Pool::global())
            .unwrap();
        let b = cache
            .prepare(&s, &obs, 0, &telemetry, Pool::global())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters[metric::SURROGATE_CACHE_HITS], 1);
        assert_eq!(snap.counters[metric::SURROGATE_CACHE_MISSES], 1);
    }

    #[test]
    fn appended_history_extends_incrementally_and_matches_full_refit() {
        let s = space();
        let obs = make_obs(&s, 12);
        let telemetry = registryd();
        // Disable re-searches so the extension path is pure.
        let policy = IncrementalPolicy::never_research(true);
        let mut cache = SurrogateCache::new(SurrogateInput::Runtime, policy);
        cache
            .prepare(&s, &obs[..10], 0, &telemetry, Pool::global())
            .unwrap();
        let extended = cache
            .prepare(&s, &obs, 0, &telemetry, Pool::global())
            .unwrap();
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters[metric::SURROGATE_INCREMENTAL_UPDATES], 2);

        // Same-hyper full refit must agree bitwise on the append-only path.
        let kinds = surrogate_kinds(&s, 1);
        let x: Vec<Vec<f64>> = obs
            .iter()
            .map(|o| encode_with_context(&s, &o.config, &o.context))
            .collect();
        let y: Vec<f64> = obs.iter().map(|o| o.runtime).collect();
        let full = GaussianProcess::fit_with_pool(
            kinds,
            x,
            &y,
            GpConfig {
                optimize_hypers: false,
                warm_hyper: Some(extended.kernel().hyper),
                ..GpConfig::default()
            },
            Pool::global(),
        )
        .unwrap();
        let probe = encode_with_context(&s, &obs[3].config, &[0.5]);
        let (m_inc, v_inc) = extended.predict(&probe);
        let (m_full, v_full) = full.predict(&probe);
        assert_eq!(m_inc.to_bits(), m_full.to_bits());
        assert_eq!(v_inc.to_bits(), v_full.to_bits());
    }

    #[test]
    fn edited_history_invalidates() {
        let s = space();
        let mut obs = make_obs(&s, 9);
        let telemetry = registryd();
        let mut cache =
            SurrogateCache::new(SurrogateInput::Objective, IncrementalPolicy::default());
        cache
            .prepare(&s, &obs, 0, &telemetry, Pool::global())
            .unwrap();
        // Rewrite an old target — e.g. a transform change upstream.
        obs[2].objective += 1.0;
        cache
            .prepare(&s, &obs, 0, &telemetry, Pool::global())
            .unwrap();
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters[metric::SURROGATE_CACHE_MISSES], 2);
        assert!(!snap.counters.contains_key(metric::SURROGATE_CACHE_HITS));
    }

    #[test]
    fn truncated_history_invalidates() {
        let s = space();
        let obs = make_obs(&s, 9);
        let telemetry = registryd();
        let mut cache = SurrogateCache::new(SurrogateInput::Runtime, IncrementalPolicy::default());
        cache
            .prepare(&s, &obs, 0, &telemetry, Pool::global())
            .unwrap();
        cache
            .prepare(&s, &obs[..5], 0, &telemetry, Pool::global())
            .unwrap();
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters[metric::SURROGATE_CACHE_MISSES], 2);
    }

    #[test]
    fn sparse_path_activates_and_caches_on_subset_plus_center() {
        let s = space();
        let obs = make_obs(&s, 24);
        let telemetry = registryd();
        let mut cache = SurrogateCache::new(SurrogateInput::Runtime, IncrementalPolicy::default());
        cache.set_sparse(Some(SparseGpConfig {
            threshold: 16,
            subset_size: 12,
        }));
        let center = encode_with_context(&s, &obs[0].config, &obs[0].context);
        let a = cache
            .prepare_with_center(&s, &obs, 0, Some(&center), &telemetry, Pool::global())
            .unwrap();
        // The fitted model holds only the selected neighbourhood.
        assert_eq!(a.n(), 12);
        // Unchanged history + center: pure hit.
        let b = cache
            .prepare_with_center(&s, &obs, 0, Some(&center), &telemetry, Pool::global())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters[metric::SUBSET_GP_ACTIVATIONS], 2);
        assert_eq!(snap.counters[metric::SURROGATE_CACHE_HITS], 1);
        assert_eq!(snap.counters[metric::SURROGATE_CACHE_MISSES], 1);
        // A moved center re-selects and refits (warm-started, no search).
        let searches_before = snap.counters[metric::GP_HYPER_SEARCHES];
        let center2 = encode_with_context(&s, &obs[20].config, &obs[20].context);
        let c = cache
            .prepare_with_center(&s, &obs, 0, Some(&center2), &telemetry, Pool::global())
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters[metric::GP_HYPER_SEARCHES], searches_before);
        assert_eq!(c.kernel().hyper, a.kernel().hyper);
    }

    #[test]
    fn sparse_below_threshold_matches_exact_path_bitwise() {
        let s = space();
        let obs = make_obs(&s, 10);
        let telemetry = registryd();
        let center = encode_with_context(&s, &obs[0].config, &obs[0].context);
        let mut exact =
            SurrogateCache::new(SurrogateInput::Objective, IncrementalPolicy::default());
        let mut flagged =
            SurrogateCache::new(SurrogateInput::Objective, IncrementalPolicy::default());
        flagged.set_sparse(Some(SparseGpConfig::default()));
        let a = exact
            .prepare(&s, &obs, 0, &telemetry, Pool::global())
            .unwrap();
        let b = flagged
            .prepare_with_center(&s, &obs, 0, Some(&center), &telemetry, Pool::global())
            .unwrap();
        let probe = encode_with_context(&s, &obs[3].config, &[0.4]);
        let (ma, va) = a.predict(&probe);
        let (mb, vb) = b.predict(&probe);
        assert_eq!(ma.to_bits(), mb.to_bits());
        assert_eq!(va.to_bits(), vb.to_bits());
        let snap = telemetry.snapshot().unwrap();
        assert!(!snap.counters.contains_key(metric::SUBSET_GP_ACTIVATIONS));
    }

    #[test]
    fn both_modes_build_identical_models() {
        let s = space();
        let obs = make_obs(&s, 14);
        let telemetry = Telemetry::disabled();
        let mut arms = [true, false].map(|enabled| {
            SurrogateCache::new(
                SurrogateInput::Objective,
                IncrementalPolicy {
                    enabled,
                    ..IncrementalPolicy::default()
                },
            )
        });
        let probe = encode_with_context(&s, &obs[0].config, &[0.3]);
        let mut preds = Vec::new();
        for cache in &mut arms {
            cache
                .prepare(&s, &obs[..3], 0, &telemetry, Pool::global())
                .unwrap();
            let mut gp = None;
            for n in 4..=obs.len() {
                gp = Some(
                    cache
                        .prepare(&s, &obs[..n], 0, &telemetry, Pool::global())
                        .unwrap(),
                );
            }
            let (m, v) = gp.unwrap().predict(&probe);
            preds.push((m.to_bits(), v.to_bits()));
        }
        assert_eq!(preds[0], preds[1]);
    }
}
