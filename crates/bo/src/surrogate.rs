//! Fitting mixed-kernel GPs on configuration runhistory.

use crate::observation::Observation;
use otune_gp::{FeatureKind, GaussianProcess, GpConfig, GpError};
use otune_pool::Pool;
use otune_space::{ConfigSpace, Configuration, DimKind};
use otune_telemetry::{metric, Telemetry};

/// Anything that yields a posterior `(mean, variance)` at an encoded
/// point — a plain GP or the meta-learning ensemble surrogate.
pub trait Predictor {
    /// Posterior predictive mean and variance at `x`.
    fn predict(&self, x: &[f64]) -> (f64, f64);

    /// Posterior predictions at many points, free to use `pool`.
    ///
    /// Implementations must return exactly what per-point
    /// [`Predictor::predict`] calls would — batching and parallelism are
    /// layout optimizations, never semantic ones — so results cannot
    /// depend on the pool width.
    fn predict_many(&self, xs: &[Vec<f64>], pool: &Pool) -> Vec<(f64, f64)> {
        let _ = pool;
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

impl Predictor for GaussianProcess {
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        GaussianProcess::predict(self, x)
    }

    fn predict_many(&self, xs: &[Vec<f64>], pool: &Pool) -> Vec<(f64, f64)> {
        self.predict_batch_pooled(xs, pool)
    }
}

/// Which metric of an [`Observation`] a surrogate models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateInput {
    /// The generalized objective `f(x)`.
    Objective,
    /// The runtime `T(x)` (the safety/constraint metric).
    Runtime,
}

/// Feature kinds for the surrogate input: one per configuration dimension
/// (from the space) plus one `DataSize` kind per context feature.
pub fn surrogate_kinds(space: &ConfigSpace, n_context: usize) -> Vec<FeatureKind> {
    let mut kinds: Vec<FeatureKind> = space
        .dim_kinds()
        .into_iter()
        .map(|k| match k {
            DimKind::Numeric => FeatureKind::Numeric,
            DimKind::Categorical => FeatureKind::Categorical,
        })
        .collect();
    kinds.extend(std::iter::repeat_n(FeatureKind::DataSize, n_context));
    kinds
}

/// Encode a configuration with its context features appended.
pub fn encode_with_context(
    space: &ConfigSpace,
    config: &Configuration,
    context: &[f64],
) -> Vec<f64> {
    let mut v = space.encode(config);
    v.extend_from_slice(context);
    v
}

/// Fit a GP on the runhistory for the chosen metric.
///
/// Context widths must be consistent across observations; the context of
/// the first observation defines the expected width.
pub fn fit_surrogate(
    space: &ConfigSpace,
    obs: &[Observation],
    input: SurrogateInput,
    seed: u64,
) -> Result<GaussianProcess, GpError> {
    fit_surrogate_with(space, obs, input, seed, &Telemetry::disabled())
}

/// [`fit_surrogate`] with instrumentation: the fit is wrapped in a
/// `gp_fit_s` timing span and the selected factor's jitter retries are
/// counted. Uses the process-wide [`Pool::global`] for the
/// hyperparameter search.
pub fn fit_surrogate_with(
    space: &ConfigSpace,
    obs: &[Observation],
    input: SurrogateInput,
    seed: u64,
    telemetry: &Telemetry,
) -> Result<GaussianProcess, GpError> {
    fit_surrogate_pooled(space, obs, input, seed, telemetry, Pool::global())
}

/// [`fit_surrogate_with`] on an explicit worker pool.
pub fn fit_surrogate_pooled(
    space: &ConfigSpace,
    obs: &[Observation],
    input: SurrogateInput,
    seed: u64,
    telemetry: &Telemetry,
    pool: &Pool,
) -> Result<GaussianProcess, GpError> {
    let _span = telemetry.span(metric::GP_FIT_S);
    let _trace = telemetry.trace_span("gp_full_fit");
    if obs.is_empty() {
        return Err(GpError::Empty);
    }
    let n_context = obs[0].context.len();
    let kinds = surrogate_kinds(space, n_context);
    let x: Vec<Vec<f64>> = obs
        .iter()
        .map(|o| encode_with_context(space, &o.config, &o.context))
        .collect();
    let y: Vec<f64> = obs
        .iter()
        .map(|o| match input {
            SurrogateInput::Objective => o.objective,
            SurrogateInput::Runtime => o.runtime,
        })
        .collect();
    let gp = GaussianProcess::fit_traced(
        kinds,
        x,
        &y,
        GpConfig {
            seed,
            ..GpConfig::default()
        },
        pool,
        telemetry,
    )?;
    telemetry.add(metric::CHOL_JITTER_RETRIES, u64::from(gp.jitter_retries()));
    Ok(gp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{ConfigSpace, Parameter};

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("a", 0, 10, 5),
            Parameter::categorical("c", &["x", "y"], 0),
        ])
    }

    fn make_obs(space: &ConfigSpace, n: usize) -> Vec<Observation> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| {
                let config = space.sample(&mut rng);
                let a = config[0].as_int().unwrap() as f64;
                Observation {
                    failed: false,
                    objective: a * 2.0,
                    runtime: 100.0 - a,
                    resource: 5.0,
                    context: vec![i as f64 / n as f64],
                    config,
                }
            })
            .collect()
    }

    #[test]
    fn kinds_cover_space_and_context() {
        let s = space();
        let kinds = surrogate_kinds(&s, 2);
        assert_eq!(kinds.len(), 4);
        assert_eq!(kinds[0], FeatureKind::Numeric);
        assert_eq!(kinds[1], FeatureKind::Categorical);
        assert_eq!(kinds[2], FeatureKind::DataSize);
        assert_eq!(kinds[3], FeatureKind::DataSize);
    }

    #[test]
    fn encoding_appends_context() {
        let s = space();
        let cfg = s.default_configuration();
        let v = encode_with_context(&s, &cfg, &[0.7]);
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], 0.7);
    }

    #[test]
    fn objective_and_runtime_surrogates_differ() {
        let s = space();
        let obs = make_obs(&s, 20);
        let f = fit_surrogate(&s, &obs, SurrogateInput::Objective, 0).unwrap();
        let t = fit_surrogate(&s, &obs, SurrogateInput::Runtime, 0).unwrap();
        let x = encode_with_context(&s, &obs[0].config, &obs[0].context);
        // Objective increases with `a`, runtime decreases — the two
        // surrogates must disagree in direction.
        let x_hi = {
            let mut v = x.clone();
            v[0] = 1.0;
            v
        };
        let x_lo = {
            let mut v = x;
            v[0] = 0.0;
            v
        };
        assert!(f.predict_mean(&x_hi) > f.predict_mean(&x_lo));
        assert!(t.predict_mean(&x_hi) < t.predict_mean(&x_lo));
    }

    #[test]
    fn empty_history_errors() {
        let s = space();
        assert!(matches!(
            fit_surrogate(&s, &[], SurrogateInput::Objective, 0),
            Err(GpError::Empty)
        ));
    }
}
