//! Approximate gradient descent (§4.3, Eqs. 9–11).
//!
//! Every `N_AGD` iterations the next configuration is produced not by
//! acquisition maximization but by a gradient step from the incumbent:
//! `∂f/∂xⁱ = β(T/R)^{β−1} ∂T/∂xⁱ + (1−β)(T/R)^β ∂R/∂xⁱ` where `∂T/∂xⁱ` is
//! a central difference on the *runtime surrogate* (Eq. 10) and `∂R/∂xⁱ`
//! is exact because `R` is white-box.
//!
//! We take the step in the encoded unit cube rather than raw parameter
//! units: raw-space steps (the paper's η = 0.001) depend on each
//! parameter's scale, which the encoding already normalizes away. The
//! gradient is ∞-norm-normalized so the largest coordinate moves by
//! exactly `eta` encoded units; only numeric dimensions move (categorical
//! dimensions have no derivative).

use otune_gp::{GaussianProcess, GpScratch};
use otune_space::{ConfigSpace, Configuration, DimKind};
use std::cell::RefCell;

/// AGD settings.
#[derive(Debug, Clone, Copy)]
pub struct Agd {
    /// Objective exponent β from Eq. 1.
    pub beta: f64,
    /// Maximum per-coordinate step in encoded units.
    pub eta: f64,
    /// Central-difference half-width in encoded units (Eq. 10's ε).
    pub epsilon: f64,
    /// Whether the runtime surrogate predicts `ln T` instead of `T`
    /// (log-warped surrogates are better conditioned for metrics spanning
    /// orders of magnitude).
    pub log_runtime: bool,
}

impl Default for Agd {
    fn default() -> Self {
        Agd {
            beta: 0.5,
            eta: 0.08,
            epsilon: 0.05,
            log_runtime: false,
        }
    }
}

impl Agd {
    /// Propose the next configuration by one gradient step from `best`.
    ///
    /// `runtime_gp` predicts `T` from `encode(config) ++ context`;
    /// `resource_fn` is the analytic `R(x)`.
    pub fn propose(
        &self,
        space: &ConfigSpace,
        best: &Configuration,
        context: &[f64],
        runtime_gp: &GaussianProcess,
        resource_fn: &dyn Fn(&Configuration) -> f64,
    ) -> Configuration {
        let kinds = space.dim_kinds();
        let u0 = space.encode(best);
        let log_runtime = self.log_runtime;
        // The central-difference loop calls the surrogate 2·dims + 1
        // times; one scratch + one input buffer serve them all, so the
        // loop allocates nothing per probe.
        let buffers = RefCell::new((GpScratch::default(), Vec::<f64>::new()));
        let predict_t = |u: &[f64]| -> f64 {
            let (scratch, x) = &mut *buffers.borrow_mut();
            x.clear();
            x.extend_from_slice(u);
            x.extend_from_slice(context);
            let m = runtime_gp.predict_with_scratch(x, scratch).0;
            if log_runtime {
                m.clamp(-20.0, 25.0).exp()
            } else {
                m.max(1e-6)
            }
        };
        let resource_at = |u: &[f64]| -> f64 { resource_fn(&space.decode(u)).max(1e-6) };

        let t0 = predict_t(&u0);
        let r0 = resource_at(&u0);
        let ratio = t0 / r0;

        let mut grad = vec![0.0; u0.len()];
        for (i, kind) in kinds.iter().enumerate() {
            if *kind != DimKind::Numeric {
                continue;
            }
            let lo = (u0[i] - self.epsilon).max(0.0);
            let hi = (u0[i] + self.epsilon).min(1.0);
            let width = hi - lo;
            if width < 1e-9 {
                continue;
            }
            let (mut up, mut down) = (u0.clone(), u0.clone());
            up[i] = hi;
            down[i] = lo;
            let dt = (predict_t(&up) - predict_t(&down)) / width;
            let dr = (resource_at(&up) - resource_at(&down)) / width;
            grad[i] = self.beta * ratio.powf(self.beta - 1.0) * dt
                + (1.0 - self.beta) * ratio.powf(self.beta) * dr;
        }

        let max_abs = grad.iter().fold(0.0_f64, |m, g| m.max(g.abs()));
        if max_abs < 1e-12 {
            return best.clone();
        }
        let scale = self.eta / max_abs;
        let u1: Vec<f64> = u0
            .iter()
            .zip(&grad)
            .map(|(&u, &g)| (u - scale * g).clamp(0.0, 1.0))
            .collect();
        space.decode(&u1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_gp::{FeatureKind, GaussianProcess, GpConfig};
    use otune_space::{ConfigSpace, ParamValue, Parameter};

    /// 2-parameter space: `n` (instances-like) and `m` (memory-like).
    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("n", 1, 100, 50),
            Parameter::int("m", 1, 32, 16),
        ])
    }

    /// Runtime model: T decreases linearly with instances, flat in memory.
    fn runtime_gp(space: &ConfigSpace) -> GaussianProcess {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let configs: Vec<_> = (0..40).map(|_| space.sample(&mut rng)).collect();
        let x: Vec<Vec<f64>> = configs.iter().map(|c| space.encode(c)).collect();
        let y: Vec<f64> = x.iter().map(|u| 200.0 - 100.0 * u[0]).collect();
        GaussianProcess::fit(
            vec![FeatureKind::Numeric, FeatureKind::Numeric],
            x,
            &y,
            GpConfig::default(),
        )
        .unwrap()
    }

    fn resource(c: &Configuration) -> f64 {
        c[0].as_int().unwrap() as f64 * (1.0 + 0.5 * c[1].as_int().unwrap() as f64)
    }

    #[test]
    fn beta_zero_descends_resource() {
        let s = space();
        let gp = runtime_gp(&s);
        let agd = Agd {
            beta: 0.0,
            ..Agd::default()
        };
        let best = s.default_configuration();
        let next = agd.propose(&s, &best, &[], &gp, &resource);
        assert!(resource(&next) < resource(&best), "resource must drop");
    }

    #[test]
    fn beta_one_descends_runtime() {
        let s = space();
        let gp = runtime_gp(&s);
        let agd = Agd {
            beta: 1.0,
            ..Agd::default()
        };
        let best = s.default_configuration();
        let next = agd.propose(&s, &best, &[], &gp, &resource);
        // Faster runtime needs more instances in this model.
        assert!(
            next[0].as_int().unwrap() > best[0].as_int().unwrap(),
            "instances should increase: {:?}",
            next[0]
        );
    }

    #[test]
    fn cost_objective_reduces_predicted_cost() {
        let s = space();
        let gp = runtime_gp(&s);
        let agd = Agd {
            beta: 0.5,
            ..Agd::default()
        };
        // Start from an over-provisioned corner.
        let best = s
            .configuration(vec![ParamValue::Int(90), ParamValue::Int(30)])
            .unwrap();
        let cost = |c: &Configuration| {
            let t = 1000.0 / c[0].as_int().unwrap() as f64 + 50.0;
            (t * resource(c)).sqrt()
        };
        let next = agd.propose(&s, &best, &[], &gp, &resource);
        assert!(
            cost(&next) < cost(&best),
            "{} !< {}",
            cost(&next),
            cost(&best)
        );
    }

    #[test]
    fn step_is_bounded_by_eta() {
        let s = space();
        let gp = runtime_gp(&s);
        let agd = Agd {
            beta: 0.5,
            eta: 0.05,
            epsilon: 0.03,
            log_runtime: false,
        };
        let best = s.default_configuration();
        let next = agd.propose(&s, &best, &[], &gp, &resource);
        let u0 = s.encode(&best);
        let u1 = s.encode(&next);
        for (a, b) in u0.iter().zip(&u1) {
            // Decode/encode rounding can add up to one integer notch.
            assert!((a - b).abs() < 0.05 + 0.02, "step too large: {a} -> {b}");
        }
    }

    #[test]
    fn zero_gradient_returns_incumbent() {
        // Flat runtime + flat resource → no movement.
        let s = space();
        let x: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![i as f64 / 9.0, (i % 3) as f64 / 2.0])
            .collect();
        let y = vec![100.0; 10];
        let gp = GaussianProcess::fit(
            vec![FeatureKind::Numeric, FeatureKind::Numeric],
            x,
            &y,
            GpConfig::default(),
        )
        .unwrap();
        let agd = Agd::default();
        let best = s.default_configuration();
        let next = agd.propose(&s, &best, &[], &gp, &|_| 5.0);
        assert_eq!(next, best);
    }
}
