//! Constrained acquisition maximization over the safe sub-space
//! (Algorithm 2, lines 6–8).

use crate::acquisition::{eic, expected_improvement, prob_below};
use crate::safe::SafeRegion;
use crate::surrogate::Predictor;
use otune_gp::GaussianProcess;
use otune_pool::Pool;
use otune_space::{Configuration, Subspace};
use otune_telemetry::{metric, Telemetry};
use rand::rngs::StdRng;
use std::collections::HashSet;

/// Candidate-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CandidateParams {
    /// Uniform random candidates drawn from the sub-space.
    pub n_random: usize,
    /// Local perturbations of the incumbent (exploitation candidates).
    pub n_local: usize,
    /// Perturbation scale for the local candidates (encoded units).
    pub local_scale: f64,
}

impl Default for CandidateParams {
    fn default() -> Self {
        CandidateParams {
            n_random: 700,
            n_local: 160,
            local_scale: 0.08,
        }
    }
}

/// The EIC objective: an objective surrogate, the incumbent value, and
/// probabilistic constraints `(surrogate, threshold)`.
pub struct EicObjective<'a> {
    /// Surrogate over `encode(config) ++ context` predicting the objective
    /// (a plain GP or the meta-learning ensemble).
    pub objective_gp: &'a dyn Predictor,
    /// Best (feasible) objective observed so far.
    pub y_best: f64,
    /// Constraint surrogates with their upper bounds; each contributes a
    /// `Pr[c(x) ≤ τ]` factor to EIC (Eq. 6).
    pub constraints: Vec<(&'a GaussianProcess, f64)>,
}

impl EicObjective<'_> {
    /// Evaluate EIC at an encoded point (configuration + context).
    pub fn eval(&self, x: &[f64]) -> f64 {
        let (mean, var) = self.objective_gp.predict(x);
        let ei = expected_improvement(mean, var, self.y_best);
        let probs: Vec<f64> = self
            .constraints
            .iter()
            .map(|(gp, thr)| {
                let (m, v) = gp.predict(x);
                prob_below(m, v, *thr)
            })
            .collect();
        eic(ei, &probs)
    }

    /// Evaluate EIC at many encoded points through the surrogates' batched
    /// prediction paths. Per point this combines the same predictions with
    /// the same arithmetic as [`EicObjective::eval`], so the scores match
    /// the scalar path exactly for every pool width.
    pub fn eval_batch(&self, xs: &[Vec<f64>], pool: &Pool) -> Vec<f64> {
        self.eval_batch_reusing(xs, Vec::new(), pool)
    }

    /// [`EicObjective::eval_batch`] with optional precomputed constraint
    /// posteriors. `reuse[k]`, when present, must hold `(mean, var)` for
    /// constraint `k` at exactly `xs` — per-point predictions are pure
    /// functions of the surrogate and the point, so substituting them is
    /// bitwise-identical to re-predicting. Missing or `None` entries are
    /// predicted here as usual.
    pub fn eval_batch_reusing(
        &self,
        xs: &[Vec<f64>],
        mut reuse: Vec<Option<Vec<(f64, f64)>>>,
        pool: &Pool,
    ) -> Vec<f64> {
        let obj = self.objective_gp.predict_many(xs, pool);
        reuse.resize(self.constraints.len(), None);
        let cons: Vec<Vec<(f64, f64)>> = self
            .constraints
            .iter()
            .zip(reuse)
            .map(|((gp, _), pre)| pre.unwrap_or_else(|| gp.predict_batch_pooled(xs, pool)))
            .collect();
        let mut probs = Vec::with_capacity(self.constraints.len());
        obj.into_iter()
            .enumerate()
            .map(|(j, (mean, var))| {
                let ei = expected_improvement(mean, var, self.y_best);
                probs.clear();
                for (preds, (_, thr)) in cons.iter().zip(&self.constraints) {
                    let (m, v) = preds[j];
                    probs.push(prob_below(m, v, *thr));
                }
                eic(ei, &probs)
            })
            .collect()
    }
}

/// Outcome of one acquisition maximization.
#[derive(Debug, Clone)]
pub struct AcquisitionChoice {
    /// The chosen configuration.
    pub config: Configuration,
    /// EIC value at the choice (0 when chosen by least-violation fallback).
    pub eic: f64,
    /// Whether the choice came from inside the safe region.
    pub from_safe_region: bool,
}

/// Maximize EIC over the safe region within the sub-space.
///
/// Candidates are sub-space samples plus local perturbations of the
/// incumbent; `analytic_feasible` drops candidates violating white-box
/// constraints (e.g. `R(x) ≤ R_max`); `safe_regions` is the intersection of
/// GP safe regions (§4.2). When the candidate set contains no safe point,
/// the *least-violating* candidate is returned — the conservative
/// exploration fallback of SafeOpt-style methods.
#[allow(clippy::too_many_arguments)]
pub fn maximize_eic(
    sub: &Subspace,
    context: &[f64],
    objective: &EicObjective<'_>,
    safe_regions: &[SafeRegion<'_>],
    analytic_feasible: Option<&dyn Fn(&Configuration) -> bool>,
    incumbent: Option<&Configuration>,
    params: CandidateParams,
    rng: &mut StdRng,
) -> AcquisitionChoice {
    maximize_eic_with(
        sub,
        context,
        objective,
        safe_regions,
        analytic_feasible,
        incumbent,
        params,
        rng,
        &Telemetry::disabled(),
        Pool::global(),
    )
}

/// [`maximize_eic`] with instrumentation and an explicit worker pool:
/// records the number of EIC evaluations per call (`eic_evals_per_iter`
/// histogram) and counts candidates rejected by the GP safe region
/// (`safe_region_rejections` counter).
///
/// Safe-region screening and EIC scoring run through the surrogates'
/// batched prediction paths in parallel chunks; winners are selected by
/// folding scores in candidate order, which reproduces the sequential
/// first-max (and first-min for the fallback) tie-breaking exactly. The
/// returned choice is therefore identical for every pool width.
#[allow(clippy::too_many_arguments)]
pub fn maximize_eic_with(
    sub: &Subspace,
    context: &[f64],
    objective: &EicObjective<'_>,
    safe_regions: &[SafeRegion<'_>],
    analytic_feasible: Option<&dyn Fn(&Configuration) -> bool>,
    incumbent: Option<&Configuration>,
    params: CandidateParams,
    rng: &mut StdRng,
    telemetry: &Telemetry,
    pool: &Pool,
) -> AcquisitionChoice {
    let _trace = telemetry.trace_span("eic_maximize");
    let gen_span = telemetry.trace_span("candidate_gen");
    let mut candidates: Vec<Configuration> = sub.sample_n(params.n_random, rng);
    if let Some(inc) = incumbent {
        for i in 0..params.n_local {
            let scale = params.local_scale * [1.0, 0.4, 0.15][i % 3];
            candidates.push(sub.neighbor(inc, scale, rng));
        }
    }
    gen_span.finish();

    // Dedup and apply analytic constraints.
    let mut seen = HashSet::new();
    candidates
        .retain(|c| seen.insert(c.dedup_key_fast()) && analytic_feasible.is_none_or(|f| f(c)));
    if candidates.is_empty() {
        // Analytic constraints rejected everything — fall back to the
        // incumbent or the sub-space base.
        let config = incumbent.cloned().unwrap_or_else(|| sub.base().clone());
        return AcquisitionChoice {
            config,
            eic: 0.0,
            from_safe_region: false,
        };
    }

    let space = sub.space();
    let encoded: Vec<Vec<f64>> = candidates
        .iter()
        .map(|c| {
            let mut v = space.encode(c);
            v.extend_from_slice(context);
            v
        })
        .collect();

    // Safe-region screening: batched upper bounds per region, violations
    // accumulated in region order (the same sum order as per-candidate
    // `violation` calls). The span covers the whole batched screen, not
    // per-chunk work, so traces stay invariant to pool width.
    // The raw posteriors behind each region are kept: when an EIC
    // constraint shares its surrogate with a region (the common runtime
    // GP), its predictions over the safe survivors are a subset of what
    // the screen already computed and are reused instead of re-predicted.
    let screen_span = telemetry.trace_span("safe_screen");
    let mut region_preds: Vec<Vec<(f64, f64)>> = Vec::with_capacity(safe_regions.len());
    let violations: Vec<f64> = if safe_regions.is_empty() {
        vec![0.0; encoded.len()]
    } else {
        let mut total = vec![0.0; encoded.len()];
        for region in safe_regions {
            let preds = region.surrogate().predict_batch_pooled(&encoded, pool);
            for (acc, &(m, v)) in total.iter_mut().zip(&preds) {
                *acc += region.violation_from(m, v);
            }
            region_preds.push(preds);
        }
        total
    };

    screen_span.finish();

    // EIC is scored only for the safe survivors, exactly as the scalar
    // loop did — so `eic_evals_per_iter` keeps its meaning.
    let safe_idx: Vec<usize> = (0..encoded.len())
        .filter(|&i| violations[i] <= 0.0)
        .collect();
    let safe_xs: Vec<Vec<f64>> = safe_idx.iter().map(|&i| encoded[i].clone()).collect();
    let reuse: Vec<Option<Vec<(f64, f64)>>> = objective
        .constraints
        .iter()
        .map(|&(gp, _)| {
            safe_regions
                .iter()
                .position(|r| std::ptr::eq(gp, r.surrogate()))
                .map(|ri| safe_idx.iter().map(|&i| region_preds[ri][i]).collect())
        })
        .collect();
    let score_span = telemetry.trace_span("eic_score");
    let scores = objective.eval_batch_reusing(&safe_xs, reuse, pool);
    score_span.finish();

    // Fold in candidate order: first-max among safe candidates, first-min
    // violation among unsafe ones — the sequential tie-breaking.
    let mut best_safe: Option<(usize, f64)> = None;
    for (&i, &v) in safe_idx.iter().zip(&scores) {
        if best_safe.is_none_or(|(_, b)| v > b) {
            best_safe = Some((i, v));
        }
    }
    let mut least_violation: Option<(usize, f64)> = None;
    for (i, &violation) in violations.iter().enumerate() {
        if violation > 0.0 && least_violation.is_none_or(|(_, b)| violation < b) {
            least_violation = Some((i, violation));
        }
    }
    let n_evals = safe_idx.len() as u64;
    let n_rejected = (encoded.len() - safe_idx.len()) as u64;
    telemetry.observe(metric::EIC_EVALS_PER_ITER, n_evals as f64);
    telemetry.add(metric::SAFE_REGION_REJECTIONS, n_rejected);

    if let Some((i, v)) = best_safe {
        AcquisitionChoice {
            config: candidates[i].clone(),
            eic: v,
            from_safe_region: true,
        }
    } else {
        let (i, _) = least_violation.expect("candidates is non-empty");
        AcquisitionChoice {
            config: candidates[i].clone(),
            eic: 0.0,
            from_safe_region: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_gp::{FeatureKind, GpConfig};
    use otune_space::{ConfigSpace, Parameter, Subspace};
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::float("a", 0.0, 1.0, 0.5),
            Parameter::float("b", 0.0, 1.0, 0.5),
        ])
    }

    /// GP over y = (a − 0.2)² (optimum at a = 0.2), flat in b.
    fn objective_gp() -> GaussianProcess {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..3 {
                let a = i as f64 / 11.0;
                let b = j as f64 / 2.0;
                x.push(vec![a, b]);
                y.push((a - 0.2) * (a - 0.2));
            }
        }
        GaussianProcess::fit(
            vec![FeatureKind::Numeric, FeatureKind::Numeric],
            x,
            &y,
            GpConfig::default(),
        )
        .unwrap()
    }

    /// Runtime GP: T = 100 + 500·a (safe only for small a).
    fn runtime_gp() -> GaussianProcess {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let a = i as f64 / 11.0;
            x.push(vec![a, 0.5]);
            y.push(100.0 + 500.0 * a);
        }
        GaussianProcess::fit(
            vec![FeatureKind::Numeric, FeatureKind::Numeric],
            x,
            &y,
            GpConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn finds_low_objective_region() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        let gp = objective_gp();
        let obj = EicObjective {
            objective_gp: &gp,
            y_best: 0.5,
            constraints: vec![],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let choice = maximize_eic(
            &sub,
            &[],
            &obj,
            &[],
            None,
            None,
            CandidateParams::default(),
            &mut rng,
        );
        let a = choice.config[0].as_float().unwrap();
        assert!((a - 0.2).abs() < 0.25, "chose a = {a}");
        assert!(choice.from_safe_region);
        assert!(choice.eic > 0.0);
    }

    #[test]
    fn safe_region_excludes_fast_but_unsafe_zone() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        // Objective optimum at a = 0.9 — but runtime there is unsafe.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            let a = i as f64 / 11.0;
            x.push(vec![a, 0.5]);
            y.push((a - 0.9) * (a - 0.9));
        }
        let ogp = GaussianProcess::fit(
            vec![FeatureKind::Numeric, FeatureKind::Numeric],
            x,
            &y,
            GpConfig::default(),
        )
        .unwrap();
        let rgp = runtime_gp();
        let region = SafeRegion::new(&rgp, 300.0, 1.0); // safe ⇔ a ≲ 0.4
        let obj = EicObjective {
            objective_gp: &ogp,
            y_best: 1.0,
            constraints: vec![],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let choice = maximize_eic(
            &sub,
            &[],
            &obj,
            &[region],
            None,
            None,
            CandidateParams::default(),
            &mut rng,
        );
        let a = choice.config[0].as_float().unwrap();
        assert!(a < 0.55, "stayed in the safe zone, a = {a}");
        assert!(choice.from_safe_region);
    }

    #[test]
    fn empty_safe_region_returns_least_violating() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        let ogp = objective_gp();
        let rgp = runtime_gp();
        // Threshold below every achievable upper bound → empty safe region.
        let region = SafeRegion::new(&rgp, 50.0, 1.0);
        let obj = EicObjective {
            objective_gp: &ogp,
            y_best: 1.0,
            constraints: vec![],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let choice = maximize_eic(
            &sub,
            &[],
            &obj,
            &[region],
            None,
            None,
            CandidateParams::default(),
            &mut rng,
        );
        assert!(!choice.from_safe_region);
        // Least violation = smallest runtime = smallest a.
        let a = choice.config[0].as_float().unwrap();
        assert!(a < 0.2, "least-unsafe candidate has small a, got {a}");
    }

    #[test]
    fn analytic_constraint_filters_candidates() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        let gp = objective_gp();
        let obj = EicObjective {
            objective_gp: &gp,
            y_best: 0.5,
            constraints: vec![],
        };
        let only_large_b = |c: &Configuration| c[1].as_float().unwrap() > 0.8;
        let mut rng = StdRng::seed_from_u64(5);
        let choice = maximize_eic(
            &sub,
            &[],
            &obj,
            &[],
            Some(&only_large_b),
            None,
            CandidateParams::default(),
            &mut rng,
        );
        assert!(choice.config[1].as_float().unwrap() > 0.8);
    }

    #[test]
    fn probabilistic_constraint_downweights_risky_zone() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        // Flat objective (pure-exploration EI), runtime constraint prefers small a.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            x.push(vec![i as f64 / 9.0, 0.5]);
            y.push(1.0 + 1e-3 * i as f64);
        }
        let ogp = GaussianProcess::fit(
            vec![FeatureKind::Numeric, FeatureKind::Numeric],
            x,
            &y,
            GpConfig::default(),
        )
        .unwrap();
        let rgp = runtime_gp();
        let obj = EicObjective {
            objective_gp: &ogp,
            y_best: 1.0,
            constraints: vec![(&rgp, 300.0)],
        };
        let mut rng = StdRng::seed_from_u64(6);
        let choice = maximize_eic(
            &sub,
            &[],
            &obj,
            &[],
            None,
            None,
            CandidateParams::default(),
            &mut rng,
        );
        let a = choice.config[0].as_float().unwrap();
        assert!(a < 0.6, "EIC avoids the low-feasibility zone, a = {a}");
    }

    #[test]
    fn telemetry_counts_evals_and_rejections() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        let ogp = objective_gp();
        let rgp = runtime_gp();
        // safe ⇔ a ≲ 0.4, so a substantial share of candidates is rejected.
        let region = SafeRegion::new(&rgp, 300.0, 1.0);
        let obj = EicObjective {
            objective_gp: &ogp,
            y_best: 1.0,
            constraints: vec![],
        };
        let mut rng = StdRng::seed_from_u64(8);
        let (telemetry, _sink) = Telemetry::ring(4);
        let choice = maximize_eic_with(
            &sub,
            &[],
            &obj,
            &[region],
            None,
            None,
            CandidateParams::default(),
            &mut rng,
            &telemetry,
            &Pool::new(4),
        );
        assert!(choice.from_safe_region);
        let snap = telemetry.snapshot().unwrap();
        let evals = snap.histograms[metric::EIC_EVALS_PER_ITER].max;
        let rejections = snap.counters[metric::SAFE_REGION_REJECTIONS];
        assert!(evals > 0.0, "some candidates were evaluated");
        assert!(rejections > 0, "some candidates were rejected");
        assert!(
            (evals + rejections as f64) <= CandidateParams::default().n_random as f64 + 1.0,
            "evals + rejections bounded by the candidate count"
        );
    }

    #[test]
    fn choice_is_pool_width_invariant() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        let ogp = objective_gp();
        let rgp = runtime_gp();
        let incumbent = s.default_configuration();
        let run = |pool: &Pool| {
            // Same RNG seed per run: candidate generation stays on the
            // caller thread, so the stream is identical by construction
            // and any divergence comes from the pooled scoring paths.
            let region = SafeRegion::new(&rgp, 400.0, 1.0);
            let obj = EicObjective {
                objective_gp: &ogp,
                y_best: 0.3,
                constraints: vec![(&rgp, 400.0)],
            };
            let mut rng = StdRng::seed_from_u64(13);
            maximize_eic_with(
                &sub,
                &[],
                &obj,
                &[region],
                None,
                Some(&incumbent),
                CandidateParams::default(),
                &mut rng,
                &Telemetry::disabled(),
                pool,
            )
        };
        let seq = run(&Pool::sequential());
        for width in [2, 4, 8] {
            let par = run(&Pool::new(width));
            assert_eq!(seq.config, par.config, "width {width}");
            assert_eq!(seq.eic.to_bits(), par.eic.to_bits(), "width {width}");
            assert_eq!(seq.from_safe_region, par.from_safe_region);
        }
    }

    #[test]
    fn constraint_sharing_region_surrogate_reuses_predictions_bitwise() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        let ogp = objective_gp();
        let rgp = runtime_gp();
        // A clone has identical posteriors but a distinct address, so it
        // forces the no-reuse path; the shared reference takes the reuse
        // path. The choices must match bit-for-bit.
        let rgp_clone = rgp.clone();
        let run = |constraint_gp: &GaussianProcess| {
            let region = SafeRegion::new(&rgp, 400.0, 1.0);
            let obj = EicObjective {
                objective_gp: &ogp,
                y_best: 0.3,
                constraints: vec![(constraint_gp, 400.0)],
            };
            let mut rng = StdRng::seed_from_u64(21);
            maximize_eic_with(
                &sub,
                &[],
                &obj,
                &[region],
                None,
                None,
                CandidateParams::default(),
                &mut rng,
                &Telemetry::disabled(),
                Pool::global(),
            )
        };
        let shared = run(&rgp);
        let distinct = run(&rgp_clone);
        assert_eq!(shared.config, distinct.config);
        assert_eq!(shared.eic.to_bits(), distinct.eic.to_bits());
        assert_eq!(shared.from_safe_region, distinct.from_safe_region);
    }

    #[test]
    fn local_candidates_exploit_incumbent() {
        let s = space();
        let sub = Subspace::full(&s, s.default_configuration()).unwrap();
        let gp = objective_gp();
        let obj = EicObjective {
            objective_gp: &gp,
            y_best: 0.01,
            constraints: vec![],
        };
        let incumbent = s
            .configuration(vec![
                otune_space::ParamValue::Float(0.2),
                otune_space::ParamValue::Float(0.5),
            ])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let choice = maximize_eic(
            &sub,
            &[],
            &obj,
            &[],
            None,
            Some(&incumbent),
            CandidateParams {
                n_random: 20,
                n_local: 60,
                local_scale: 0.05,
            },
            &mut rng,
        );
        // With a tight incumbent and a tight y_best, the winner should sit
        // near the optimum basin.
        let a = choice.config[0].as_float().unwrap();
        assert!((a - 0.2).abs() < 0.3, "a = {a}");
    }
}
