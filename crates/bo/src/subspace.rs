//! Adaptive sub-space generation (§4.1).
//!
//! Parameters are ranked by fANOVA importance over the runhistory (starting
//! from an expert prior ranking when there is no history). The sub-space
//! size `K` starts at `K_init` and evolves TuRBO-style: after `τ_succ`
//! consecutive improvements it grows by 2 (up to `K_max`), after `τ_fail`
//! consecutive non-improvements it shrinks by 2 (down to `K_min`).

use otune_forest::Fanova;
use otune_space::{ConfigSpace, Configuration, Subspace};
use serde::{Deserialize, Serialize};

/// Sub-space evolution parameters (paper defaults: `τ_succ = 3`,
/// `τ_fail = 5`, `K_min = 4`, `K_init = 10`, step ±2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SubspaceParams {
    /// Initial size `K_init`.
    pub k_init: usize,
    /// Minimum size `K_min`.
    pub k_min: usize,
    /// Maximum size `K_max` (the full parameter count).
    pub k_max: usize,
    /// Consecutive successes before growing.
    pub tau_success: usize,
    /// Consecutive failures before shrinking.
    pub tau_failure: usize,
    /// Size step on grow/shrink.
    pub step: usize,
}

impl SubspaceParams {
    /// Paper defaults for a space of `k_max` parameters.
    pub fn paper_defaults(k_max: usize) -> Self {
        SubspaceParams {
            k_init: 10.min(k_max),
            k_min: 4.min(k_max),
            k_max,
            tau_success: 3,
            tau_failure: 5,
            step: 2,
        }
    }
}

/// Tracks the sub-space size and parameter ranking across iterations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveSubspace {
    params: SubspaceParams,
    k: usize,
    successes: usize,
    failures: usize,
    /// Current importance ranking (most important first). Starts from an
    /// expert prior and is refreshed from fANOVA as history accumulates.
    ranking: Vec<usize>,
}

impl AdaptiveSubspace {
    /// Start with an expert prior ranking (§4.1: "we start with an initial
    /// parameter ranking suggested by experts").
    pub fn new(params: SubspaceParams, expert_ranking: Vec<usize>) -> Self {
        assert!(
            expert_ranking.len() >= params.k_max,
            "ranking must cover at least K_max parameters ({} < {})",
            expert_ranking.len(),
            params.k_max
        );
        AdaptiveSubspace {
            k: params.k_init.clamp(params.k_min, params.k_max),
            params,
            successes: 0,
            failures: 0,
            ranking: expert_ranking,
        }
    }

    /// Current sub-space size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current ranking (most important first).
    pub fn ranking(&self) -> &[usize] {
        &self.ranking
    }

    /// Record whether the latest evaluation improved on the incumbent and
    /// evolve `K` accordingly. Returns the (possibly new) `K`.
    pub fn record(&mut self, success: bool) -> usize {
        if success {
            self.successes += 1;
            self.failures = 0;
        } else {
            self.failures += 1;
            self.successes = 0;
        }
        if self.successes >= self.params.tau_success {
            self.k = (self.k + self.params.step).min(self.params.k_max);
            self.successes = 0;
            self.failures = 0;
        } else if self.failures >= self.params.tau_failure {
            self.k = self
                .k
                .saturating_sub(self.params.step)
                .max(self.params.k_min);
            self.successes = 0;
            self.failures = 0;
        }
        self.k
    }

    /// Refresh the importance ranking from the runhistory via fANOVA.
    /// Encoded rows `x` must span the full space; `y` is the objective.
    /// Keeps the previous ranking if the forest cannot be fitted (e.g. too
    /// little history).
    pub fn refresh_ranking(&mut self, x: &[Vec<f64>], y: &[f64], seed: u64) {
        if x.len() < 4 {
            return;
        }
        if let Ok(f) = Fanova::fit(x, y, seed) {
            let ranking = f.ranking();
            if ranking.len() == self.ranking.len() {
                self.ranking = ranking;
            }
        }
    }

    /// Externally supplied ranking (e.g. averaged scores across tasks or a
    /// meta-learned suggestion, §5.2).
    pub fn set_ranking(&mut self, ranking: Vec<usize>) {
        assert_eq!(
            ranking.len(),
            self.ranking.len(),
            "ranking must cover the space"
        );
        self.ranking = ranking;
    }

    /// Materialize the current sub-space: the top-`K` ranked parameters
    /// free, everything else frozen at `base` (the incumbent).
    pub fn build(&self, space: &ConfigSpace, base: Configuration) -> Subspace {
        let free: Vec<usize> = self.ranking.iter().copied().take(self.k).collect();
        Subspace::new(space, free, base).expect("ranking indices are valid by construction")
    }
}

/// The expert prior ranking for the 30-parameter Spark space: resource
/// parameters first (they dominate Table 5), then memory management,
/// parallelism, shuffle and serialization, then the long tail.
pub fn spark_expert_ranking() -> Vec<usize> {
    use otune_space::SparkParam as P;
    let head = [
        P::ExecutorInstances,
        P::ExecutorMemory,
        P::MemoryStorageFraction,
        P::DefaultParallelism,
        P::MemoryFraction,
        P::ExecutorCores,
        P::IoCompressionCodec,
        P::ShuffleFileBuffer,
        P::ShuffleCompress,
        P::Serializer,
        P::SqlShufflePartitions,
        P::ShuffleSpillCompress,
        P::ReducerMaxSizeInFlight,
        P::RddCompress,
        P::ExecutorMemoryOverhead,
        P::DriverMemory,
        P::DriverCores,
        P::Speculation,
        P::LocalityWait,
        P::BroadcastCompress,
        P::BroadcastBlockSize,
        P::KryoserializerBufferMax,
        P::ShuffleSortBypassMergeThreshold,
        P::SpeculationMultiplier,
        P::ShuffleIoNumConnectionsPerPeer,
        P::StorageMemoryMapThreshold,
        P::SchedulerMode,
        P::TaskMaxFailures,
        P::NetworkTimeout,
        P::ExecutorHeartbeatInterval,
    ];
    head.iter().map(|p| p.index()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{spark_space, ClusterScale};

    fn manager() -> AdaptiveSubspace {
        AdaptiveSubspace::new(SubspaceParams::paper_defaults(30), spark_expert_ranking())
    }

    #[test]
    fn starts_at_k_init() {
        assert_eq!(manager().k(), 10);
    }

    #[test]
    fn grows_after_tau_successes() {
        let mut m = manager();
        m.record(true);
        m.record(true);
        assert_eq!(m.k(), 10);
        m.record(true);
        assert_eq!(m.k(), 12);
    }

    #[test]
    fn shrinks_after_tau_failures() {
        let mut m = manager();
        for _ in 0..4 {
            m.record(false);
        }
        assert_eq!(m.k(), 10);
        m.record(false);
        assert_eq!(m.k(), 8);
    }

    #[test]
    fn counters_reset_on_opposite_event() {
        let mut m = manager();
        m.record(true);
        m.record(true);
        m.record(false); // resets the success streak
        m.record(true);
        m.record(true);
        assert_eq!(m.k(), 10);
        m.record(true);
        assert_eq!(m.k(), 12);
    }

    #[test]
    fn respects_bounds() {
        let mut m = manager();
        for _ in 0..200 {
            m.record(false);
        }
        assert_eq!(m.k(), 4, "never below K_min");
        for _ in 0..200 {
            m.record(true);
        }
        assert_eq!(m.k(), 30, "never above K_max");
    }

    #[test]
    fn builds_subspace_over_top_ranked() {
        let space = spark_space(ClusterScale::hibench());
        let m = manager();
        let sub = m.build(&space, space.default_configuration());
        assert_eq!(sub.k(), 10);
        let ranking = spark_expert_ranking();
        assert_eq!(sub.free_indices(), &ranking[..10]);
    }

    #[test]
    fn refresh_ranking_reorders_by_importance() {
        let mut m = manager();
        // Synthetic history where dim 7 dominates the objective.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..120 {
            let row: Vec<f64> = (0..30).map(|_| rng.gen::<f64>()).collect();
            y.push(50.0 * row[7] + row[3]);
            x.push(row);
        }
        m.refresh_ranking(&x, &y, 1);
        assert_eq!(
            m.ranking()[0],
            7,
            "dominant dim promoted: {:?}",
            &m.ranking()[..5]
        );
    }

    #[test]
    fn refresh_with_tiny_history_is_noop() {
        let mut m = manager();
        let before = m.ranking().to_vec();
        m.refresh_ranking(&[vec![0.0; 30]], &[1.0], 0);
        assert_eq!(m.ranking(), &before[..]);
    }

    #[test]
    fn expert_ranking_is_a_permutation() {
        let mut r = spark_expert_ranking();
        r.sort_unstable();
        assert_eq!(r, (0..30).collect::<Vec<_>>());
    }
}
