//! Acquisition functions: EI (Eq. 3), probability of feasibility (Eq. 7),
//! EI with constraints (Eq. 6).

use otune_gp::{norm_cdf, norm_pdf};

/// Expected Improvement of a *minimization* problem at a point with
/// posterior `(mean, var)` given the best observed value `y_best`:
///
/// `EI(x) = σ(x)·(γ·Φ(γ) + φ(γ))` with `γ = (y* − μ)/σ` (Eq. 3).
pub fn expected_improvement(mean: f64, var: f64, y_best: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (y_best - mean).max(0.0);
    }
    let gamma = (y_best - mean) / sigma;
    (sigma * (gamma * norm_cdf(gamma) + norm_pdf(gamma))).max(0.0)
}

/// `Pr[metric(x) ≤ threshold]` from the metric surrogate's posterior
/// `(mean, var)` (Eq. 7).
pub fn prob_below(mean: f64, var: f64, threshold: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return if mean <= threshold { 1.0 } else { 0.0 };
    }
    norm_cdf((threshold - mean) / sigma)
}

/// EI with constraints (Eq. 6): `EIC(x) = EI(x) · Π_i Pr[c_i(x) ≤ τ_i]`.
///
/// `constraint_probs` are the per-constraint feasibility probabilities.
pub fn eic(ei: f64, constraint_probs: &[f64]) -> f64 {
    ei * constraint_probs.iter().product::<f64>()
}

/// Lower confidence bound for minimization: `LCB(x) = μ(x) − κ·σ(x)`.
/// Returned negated so that, like the other acquisitions, *larger is
/// better* for the maximizer. An alternative to EI the paper's framework
/// can be instantiated with (OpenBox exposes the same choice).
pub fn lower_confidence_bound(mean: f64, var: f64, kappa: f64) -> f64 {
    debug_assert!(kappa >= 0.0);
    -(mean - kappa * var.max(0.0).sqrt())
}

/// Probability of improvement over the incumbent (minimization):
/// `PI(x) = Pr[y < y* − ξ]`. The greediest of the classic acquisitions;
/// `xi` adds a margin that restores some exploration.
pub fn probability_of_improvement(mean: f64, var: f64, y_best: f64, xi: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return if mean < y_best - xi { 1.0 } else { 0.0 };
    }
    norm_cdf((y_best - xi - mean) / sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ei_positive_when_mean_below_best() {
        let better = expected_improvement(0.0, 1.0, 1.0);
        let worse = expected_improvement(2.0, 1.0, 1.0);
        assert!(better > worse);
        assert!(better > 0.0);
    }

    #[test]
    fn ei_grows_with_uncertainty() {
        let confident = expected_improvement(1.5, 0.01, 1.0);
        let uncertain = expected_improvement(1.5, 4.0, 1.0);
        assert!(uncertain > confident, "{uncertain} vs {confident}");
    }

    #[test]
    fn ei_zero_variance_reduces_to_plain_improvement() {
        assert_eq!(expected_improvement(0.3, 0.0, 1.0), 0.7);
        assert_eq!(expected_improvement(1.3, 0.0, 1.0), 0.0);
    }

    #[test]
    fn ei_closed_form_sanity() {
        // γ = 0: EI = σ·φ(0).
        let ei = expected_improvement(1.0, 4.0, 1.0);
        assert!((ei - 2.0 * 0.3989422804).abs() < 1e-6);
    }

    #[test]
    fn pof_limits() {
        assert!((prob_below(0.0, 1.0, 0.0) - 0.5).abs() < 1e-7);
        assert!(prob_below(0.0, 1.0, 10.0) > 0.999);
        assert!(prob_below(10.0, 1.0, 0.0) < 0.001);
        assert_eq!(prob_below(1.0, 0.0, 2.0), 1.0);
        assert_eq!(prob_below(3.0, 0.0, 2.0), 0.0);
    }

    #[test]
    fn eic_multiplies_probabilities() {
        assert_eq!(eic(2.0, &[0.5, 0.5]), 0.5);
        assert_eq!(eic(2.0, &[]), 2.0);
        assert_eq!(eic(2.0, &[0.0]), 0.0);
    }

    #[test]
    fn lcb_prefers_low_mean_and_high_uncertainty() {
        let base = lower_confidence_bound(1.0, 1.0, 2.0);
        assert!(
            lower_confidence_bound(0.5, 1.0, 2.0) > base,
            "lower mean wins"
        );
        assert!(
            lower_confidence_bound(1.0, 4.0, 2.0) > base,
            "more uncertainty wins"
        );
        // κ = 0 reduces to pure exploitation of the mean.
        assert_eq!(lower_confidence_bound(3.0, 9.0, 0.0), -3.0);
    }

    #[test]
    fn pi_limits_and_monotonicity() {
        // Mean far below the incumbent → improvement nearly certain.
        assert!(probability_of_improvement(-10.0, 1.0, 0.0, 0.0) > 0.999);
        // Mean far above → nearly impossible.
        assert!(probability_of_improvement(10.0, 1.0, 0.0, 0.0) < 0.001);
        // ξ shrinks the probability.
        let loose = probability_of_improvement(0.0, 1.0, 0.5, 0.0);
        let tight = probability_of_improvement(0.0, 1.0, 0.5, 0.4);
        assert!(tight < loose);
        // Zero variance degenerates to an indicator.
        assert_eq!(probability_of_improvement(0.0, 0.0, 1.0, 0.0), 1.0);
        assert_eq!(probability_of_improvement(2.0, 0.0, 1.0, 0.0), 0.0);
    }
}
