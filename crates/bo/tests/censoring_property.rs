//! Property tests for failure censoring: a configuration with repeated
//! recorded failures must never re-enter the feasible set — neither
//! through [`Observation::is_feasible`] nor through the safe-region GP
//! fitted on the censored runhistory — and the fit must be
//! bitwise-identical across worker-pool widths (`OTUNE_THREADS` 1 vs 4).

use otune_bo::{Observation, SafeRegion};
use otune_gp::{FeatureKind, GaussianProcess, GpConfig};
use otune_pool::Pool;
use otune_space::{Configuration, ParamValue};
use proptest::prelude::*;

/// The constraint threshold the scenarios tune under.
const T_MAX: f64 = 100.0;
/// The tuner's censoring multiplier: failed runs are recorded at
/// `PENALTY × T_MAX`.
const PENALTY: f64 = 2.0;

fn obs(x: f64, runtime: f64, failed: bool) -> Observation {
    Observation {
        failed,
        config: Configuration::new(vec![ParamValue::Float(x)]),
        objective: runtime,
        runtime,
        resource: 1.0,
        context: vec![],
    }
}

/// A censored runhistory: `n_clean` feasible runs on a grid with
/// runtimes rising from `clean_lo × T_MAX` to `0.9 × T_MAX`, plus two
/// censored failures recorded at `fail_x`.
fn censored_history(n_clean: usize, clean_lo: f64, fail_x: f64) -> Vec<Observation> {
    let mut history: Vec<Observation> = (0..n_clean)
        .map(|i| {
            let x = i as f64 / (n_clean - 1) as f64;
            let ratio = clean_lo + (0.9 - clean_lo) * x;
            obs(x, ratio * T_MAX, false)
        })
        .collect();
    for _ in 0..2 {
        history.push(obs(fail_x, PENALTY * T_MAX, true));
    }
    history
}

/// Fit the runtime surrogate the way the tuner does: log-space runtimes
/// normalized by the threshold, so the safe bound is `u(x) ≤ 0`.
fn fit_runtime_gp(history: &[Observation], seed: u64, threads: usize) -> GaussianProcess {
    let x: Vec<Vec<f64>> = history
        .iter()
        .map(|o| vec![o.config[0].as_float().unwrap()])
        .collect();
    let y: Vec<f64> = history.iter().map(|o| (o.runtime / T_MAX).ln()).collect();
    GaussianProcess::fit_with_pool(
        vec![FeatureKind::Numeric],
        x,
        &y,
        GpConfig {
            seed,
            ..GpConfig::default()
        },
        &Pool::new(threads),
    )
    .expect("valid history")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A failed observation is infeasible no matter how attractive its
    /// censored numbers look or how loose the constraints are.
    #[test]
    fn failed_observations_are_never_feasible(
        runtime in 0.01f64..1e6,
        resource in 0.01f64..1e6,
        t_max in proptest::option::of(1.0f64..1e7),
        r_max in proptest::option::of(1.0f64..1e7),
    ) {
        let o = obs(0.5, runtime, true);
        let o = Observation { resource, ..o };
        prop_assert!(!o.is_feasible(t_max, r_max));
    }

    /// The safe-region GP fitted on a censored history excludes any
    /// configuration with two recorded failures: the censored runtimes
    /// pull `μ(x) + γσ(x)` above the threshold there.
    #[test]
    fn two_recorded_failures_exclude_a_config_from_the_safe_region(
        seed in 0u64..512,
        fail_x in 0.1f64..0.9,
        n_clean in 4usize..9,
        clean_lo in 0.35f64..0.6,
    ) {
        let history = censored_history(n_clean, clean_lo, fail_x);
        for o in history.iter().filter(|o| o.failed) {
            prop_assert!(!o.is_feasible(Some(T_MAX), None));
        }
        let gp = fit_runtime_gp(&history, seed, 1);
        // Threshold ln(T_MAX / T_MAX) = 0 in the normalized log space.
        let region = SafeRegion::new(&gp, 0.0, 1.0);
        prop_assert!(
            !region.is_safe(&[fail_x]),
            "twice-failed x = {fail_x} re-entered the safe region \
             (u = {})",
            region.upper_bound(&[fail_x]),
        );
    }

    /// The fitted surrogate — hyperparameter search included — is
    /// bitwise-identical for 1 and 4 worker threads, so feasibility
    /// decisions cannot depend on `OTUNE_THREADS`.
    #[test]
    fn censored_fit_is_bitwise_identical_across_pool_widths(
        seed in 0u64..512,
        fail_x in 0.1f64..0.9,
        n_clean in 4usize..9,
    ) {
        let history = censored_history(n_clean, 0.5, fail_x);
        let gp1 = fit_runtime_gp(&history, seed, 1);
        let gp4 = fit_runtime_gp(&history, seed, 4);
        for i in 0..=20 {
            let x = [i as f64 / 20.0];
            let (m1, v1) = gp1.predict(&x);
            let (m4, v4) = gp4.predict(&x);
            prop_assert_eq!(m1.to_bits(), m4.to_bits(), "mean at {:?}", x);
            prop_assert_eq!(v1.to_bits(), v4.to_bits(), "var at {:?}", x);
        }
        // Identical models ⇒ identical safe regions.
        let r1 = SafeRegion::new(&gp1, 0.0, 1.0);
        let r4 = SafeRegion::new(&gp4, 0.0, 1.0);
        for i in 0..=20 {
            let x = [i as f64 / 20.0];
            prop_assert_eq!(r1.is_safe(&x), r4.is_safe(&x));
        }
    }
}
