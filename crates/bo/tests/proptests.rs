//! Property-based tests for acquisition functions and the adaptive
//! sub-space schedule.

use otune_bo::{expected_improvement, prob_below, AdaptiveSubspace, SubspaceParams};
use proptest::prelude::*;

proptest! {
    /// EI is non-negative and weakly increasing in the incumbent value
    /// (a worse incumbent is easier to improve on).
    #[test]
    fn ei_nonneg_and_monotone_in_best(
        mean in -50.0f64..50.0,
        var in 0.0f64..100.0,
        best in -50.0f64..50.0,
        bump in 0.0f64..20.0,
    ) {
        let a = expected_improvement(mean, var, best);
        let b = expected_improvement(mean, var, best + bump);
        prop_assert!(a >= 0.0);
        prop_assert!(b + 1e-12 >= a, "EI must grow with a worse incumbent: {a} vs {b}");
    }

    /// EI is weakly decreasing in the predicted mean.
    #[test]
    fn ei_decreases_with_mean(
        mean in -50.0f64..50.0,
        var in 0.01f64..100.0,
        best in -50.0f64..50.0,
        bump in 0.0f64..20.0,
    ) {
        let a = expected_improvement(mean, var, best);
        let b = expected_improvement(mean + bump, var, best);
        prop_assert!(b <= a + 1e-12);
    }

    /// Probability of feasibility is a valid CDF in the threshold.
    #[test]
    fn pof_is_a_cdf(
        mean in -50.0f64..50.0,
        var in 0.0f64..100.0,
        t1 in -100.0f64..100.0,
        dt in 0.0f64..50.0,
    ) {
        let p1 = prob_below(mean, var, t1);
        let p2 = prob_below(mean, var, t1 + dt);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 + 1e-12 >= p1, "monotone in threshold");
    }

    /// The sub-space size K stays within [K_min, K_max] for any
    /// success/failure sequence, and only changes in ±step moves.
    #[test]
    fn subspace_k_always_in_bounds(events in proptest::collection::vec(any::<bool>(), 0..200)) {
        let params = SubspaceParams {
            k_init: 10,
            k_min: 4,
            k_max: 30,
            tau_success: 3,
            tau_failure: 5,
            step: 2,
        };
        let mut m = AdaptiveSubspace::new(params, (0..30).collect());
        let mut prev = m.k();
        for e in events {
            let k = m.record(e);
            prop_assert!((4..=30).contains(&k), "K out of bounds: {k}");
            prop_assert!(k.abs_diff(prev) <= 2, "K jumped: {prev} -> {k}");
            prev = k;
        }
    }

    /// An all-failure stream pins K at K_min; an all-success stream pins
    /// it at K_max.
    #[test]
    fn subspace_extremes(n in 50usize..200) {
        let params = SubspaceParams::paper_defaults(30);
        let mut shrink = AdaptiveSubspace::new(params, (0..30).collect());
        let mut grow = AdaptiveSubspace::new(params, (0..30).collect());
        for _ in 0..n {
            shrink.record(false);
            grow.record(true);
        }
        prop_assert_eq!(shrink.k(), params.k_min);
        prop_assert_eq!(grow.k(), params.k_max);
    }
}
