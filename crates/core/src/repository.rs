//! The data repository (Figure 1, component 5).
//!
//! Stores per-task runhistory and workload meta-features, shared between
//! concurrently tuned tasks (hence the lock). The JSON export/import pair
//! is the durable representation the Tencent deployment keeps in its
//! storage service.

use crate::snapshot::TunerSnapshot;
use otune_bo::Observation;
use otune_meta::TaskRecord;
use otune_telemetry::{BatchedWriter, SyncPolicy};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[derive(Debug, Default, Serialize, Deserialize)]
struct Repo {
    tasks: BTreeMap<String, TaskRecord>,
    /// Latest crash-recovery snapshot per task (absent in repositories
    /// exported before snapshots existed).
    #[serde(default)]
    snapshots: BTreeMap<String, TunerSnapshot>,
}

/// Thread-safe store of tuning history across tasks.
#[derive(Debug, Default)]
pub struct DataRepository {
    inner: RwLock<Repo>,
}

impl DataRepository {
    /// An empty repository.
    pub fn new() -> Self {
        DataRepository::default()
    }

    /// Number of tasks with stored history.
    pub fn len(&self) -> usize {
        self.inner.read().tasks.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append an observation to a task's runhistory (creating the task
    /// record if needed).
    pub fn record_observation(&self, task_id: &str, obs: Observation) {
        let mut repo = self.inner.write();
        let rec = repo
            .tasks
            .entry(task_id.to_string())
            .or_insert_with(|| TaskRecord {
                task_id: task_id.to_string(),
                meta_features: Vec::new(),
                observations: Vec::new(),
            });
        rec.observations.push(obs);
    }

    /// Set (or update) a task's meta-features.
    pub fn set_meta_features(&self, task_id: &str, features: Vec<f64>) {
        let mut repo = self.inner.write();
        let rec = repo
            .tasks
            .entry(task_id.to_string())
            .or_insert_with(|| TaskRecord {
                task_id: task_id.to_string(),
                meta_features: Vec::new(),
                observations: Vec::new(),
            });
        rec.meta_features = features;
    }

    /// A task's full record, if present.
    pub fn task(&self, task_id: &str) -> Option<TaskRecord> {
        self.inner.read().tasks.get(task_id).cloned()
    }

    /// A task's meta-features alone (`None` when unset or empty) —
    /// cheaper than [`DataRepository::task`], which clones the full
    /// observation history.
    pub fn meta_features(&self, task_id: &str) -> Option<Vec<f64>> {
        self.inner
            .read()
            .tasks
            .get(task_id)
            .filter(|t| !t.meta_features.is_empty())
            .map(|t| t.meta_features.clone())
    }

    /// All task records except `exclude` (the task being tuned), restricted
    /// to tasks that have both meta-features and history — the usable
    /// meta-learning sources.
    pub fn source_tasks(&self, exclude: &str) -> Vec<TaskRecord> {
        self.inner
            .read()
            .tasks
            .values()
            .filter(|t| {
                t.task_id != exclude && !t.meta_features.is_empty() && t.observations.len() >= 3
            })
            .cloned()
            .collect()
    }

    /// Store a task's latest crash-recovery snapshot (replacing any
    /// previous one — only the newest is ever resumed).
    pub fn record_snapshot(&self, snap: TunerSnapshot) {
        self.inner
            .write()
            .snapshots
            .insert(snap.task_id.clone(), snap);
    }

    /// A task's latest crash-recovery snapshot, if one was stored.
    pub fn snapshot(&self, task_id: &str) -> Option<TunerSnapshot> {
        self.inner.read().snapshots.get(task_id).cloned()
    }

    /// Serialize the entire repository to JSON.
    pub fn export_json(&self) -> String {
        serde_json::to_string(&*self.inner.read()).expect("repository is always serializable")
    }

    /// Load a repository from JSON.
    pub fn import_json(json: &str) -> Result<Self, serde_json::Error> {
        let repo: Repo = serde_json::from_str(json)?;
        Ok(DataRepository {
            inner: RwLock::new(repo),
        })
    }
}

/// Append-only JSONL log of tuner snapshots: one snapshot per line,
/// appended after every observation through the shared group-commit
/// writer ([`otune_telemetry::BatchedWriter`]). Under the default
/// [`SyncPolicy::Every`] each append is fsynced before returning — the
/// legacy cadence — so a crash mid-run loses at most the in-flight line;
/// lazier policies (`batch:N`, `barrier`) stage lines in memory and pay
/// one `sync_data` per batch, with [`SnapshotLog::flush`] as the
/// explicit durability barrier. [`SnapshotLog::load_last`] tolerates a
/// torn trailing write — it returns the newest line that still parses —
/// and a torn tail is *healed* (newline-terminated) by the next append
/// instead of being glued onto.
#[derive(Debug, Clone)]
pub struct SnapshotLog {
    path: PathBuf,
    policy: SyncPolicy,
    /// Lazily opened on first append so constructing a log never touches
    /// the filesystem; shared across clones so batching spans them.
    writer: Arc<Mutex<Option<BatchedWriter>>>,
}

impl SnapshotLog {
    /// A log at the given path (created on first append), with the sync
    /// cadence taken from `OTUNE_JOURNAL_SYNC` (default: every line).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SnapshotLog::with_policy(path, SyncPolicy::from_env())
    }

    /// A log with an explicit sync policy.
    pub fn with_policy(path: impl Into<PathBuf>, policy: SyncPolicy) -> Self {
        SnapshotLog {
            path: path.into(),
            policy,
            writer: Arc::new(Mutex::new(None)),
        }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sync policy appends are written under.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Append one snapshot as a JSON line. Under [`SyncPolicy::Every`]
    /// the line is durable when this returns; under lazier policies it
    /// may be staged until the batch fills or [`SnapshotLog::flush`].
    pub fn append(&self, snap: &TunerSnapshot) -> std::io::Result<()> {
        let line = serde_json::to_string(snap)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut guard = self.writer.lock();
        let writer = match guard.as_mut() {
            Some(w) => w,
            None => guard.insert(BatchedWriter::open(&self.path, self.policy)?),
        };
        writer.append_line(&line)?;
        Ok(())
    }

    /// Sync barrier: every appended snapshot is durable when this
    /// returns. Free when nothing is staged (so the default `every`
    /// policy pays no extra fsyncs).
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(w) = self.writer.lock().as_mut() {
            w.barrier()?;
        }
        Ok(())
    }

    /// Snapshots staged in memory but not yet flushed (0 under the
    /// default `every` policy).
    pub fn pending_lines(&self) -> usize {
        self.writer.lock().as_ref().map_or(0, |w| w.pending_lines())
    }

    /// The newest snapshot that parses, skipping a torn or corrupt tail.
    /// A missing file is `Ok(None)` (nothing to resume); an unreadable
    /// file is an error. Use [`SnapshotLog::load_last_recovered`] when the
    /// caller needs to know whether (and how many) lines were skipped.
    pub fn load_last(&self) -> std::io::Result<Option<TunerSnapshot>> {
        Ok(self.load_last_recovered()?.into_snapshot())
    }

    /// [`SnapshotLog::load_last`] with the loss surfaced: the result says
    /// whether the newest snapshot was read cleanly or recovered past
    /// torn/corrupt lines, and how many lines were skipped. A missing
    /// file is a clean `None`.
    pub fn load_last_recovered(&self) -> std::io::Result<SnapshotRecovery> {
        // Reads are recovery points: drain any staged batch first so the
        // caller never resumes from behind its own appends.
        self.flush()?;
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SnapshotRecovery::Clean(None))
            }
            Err(e) => return Err(e),
        };
        let mut snapshot = None;
        let mut skipped = 0u64;
        for line in text.lines().rev().filter(|l| !l.trim().is_empty()) {
            match serde_json::from_str::<TunerSnapshot>(line) {
                Ok(s) => {
                    snapshot = Some(s);
                    break;
                }
                Err(_) => skipped += 1,
            }
        }
        Ok(if skipped == 0 {
            SnapshotRecovery::Clean(snapshot)
        } else {
            SnapshotRecovery::RecoveredWithLoss {
                snapshot,
                skipped_lines: skipped,
            }
        })
    }

    /// [`SnapshotLog::load_last_recovered`] that also bumps the
    /// `journal_torn_tails` counter on the given telemetry handle when
    /// lines had to be skipped, so recovery-with-loss is never silent.
    pub fn load_last_counted(
        &self,
        telemetry: &otune_telemetry::Telemetry,
    ) -> std::io::Result<SnapshotRecovery> {
        let recovery = self.load_last_recovered()?;
        if let SnapshotRecovery::RecoveredWithLoss { skipped_lines, .. } = &recovery {
            telemetry.add(otune_telemetry::metric::JOURNAL_TORN_TAILS, *skipped_lines);
        }
        Ok(recovery)
    }
}

/// Outcome of a [`SnapshotLog`] load: either every trailing line parsed
/// cleanly, or the newest parseable snapshot was recovered past torn or
/// corrupt lines (whose count is reported, never swallowed).
#[derive(Debug, Clone)]
pub enum SnapshotRecovery {
    /// The newest line parsed (or the log was missing/empty): no loss.
    Clean(Option<TunerSnapshot>),
    /// `skipped_lines` torn/corrupt trailing lines were skipped to reach
    /// the newest parseable snapshot (`None` when no line parses at all).
    RecoveredWithLoss {
        /// The newest snapshot that still parses.
        snapshot: Option<TunerSnapshot>,
        /// Unparseable lines skipped on the way (≥ 1).
        skipped_lines: u64,
    },
}

impl SnapshotRecovery {
    /// The recovered snapshot, discarding the loss information.
    pub fn into_snapshot(self) -> Option<TunerSnapshot> {
        match self {
            SnapshotRecovery::Clean(s) => s,
            SnapshotRecovery::RecoveredWithLoss { snapshot, .. } => snapshot,
        }
    }

    /// Lines that had to be skipped (0 for a clean load).
    pub fn skipped_lines(&self) -> u64 {
        match self {
            SnapshotRecovery::Clean(_) => 0,
            SnapshotRecovery::RecoveredWithLoss { skipped_lines, .. } => *skipped_lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{Configuration, ParamValue};

    fn obs(v: f64) -> Observation {
        Observation {
            failed: false,
            config: Configuration::new(vec![ParamValue::Int(v as i64)]),
            objective: v,
            runtime: v,
            resource: 1.0,
            context: vec![],
        }
    }

    #[test]
    fn records_accumulate() {
        let repo = DataRepository::new();
        assert!(repo.is_empty());
        repo.record_observation("a", obs(1.0));
        repo.record_observation("a", obs(2.0));
        repo.record_observation("b", obs(3.0));
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.task("a").unwrap().observations.len(), 2);
        assert!(repo.task("zzz").is_none());
    }

    #[test]
    fn source_tasks_filter() {
        let repo = DataRepository::new();
        for i in 0..4 {
            repo.record_observation("full", obs(i as f64));
            repo.record_observation("nometa", obs(i as f64));
        }
        repo.set_meta_features("full", vec![1.0]);
        repo.record_observation("short", obs(0.0));
        repo.set_meta_features("short", vec![1.0]);

        let sources = repo.source_tasks("other");
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].task_id, "full");
        // The tuned task itself is excluded.
        assert!(repo.source_tasks("full").is_empty());
    }

    #[test]
    fn json_round_trip() {
        let repo = DataRepository::new();
        repo.record_observation("t", obs(1.5));
        repo.set_meta_features("t", vec![0.1, 0.2]);
        let json = repo.export_json();
        let back = DataRepository::import_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        let t = back.task("t").unwrap();
        assert_eq!(t.meta_features, vec![0.1, 0.2]);
        assert_eq!(t.observations.len(), 1);
    }

    fn snap(task_id: &str, n_obs: usize) -> TunerSnapshot {
        TunerSnapshot {
            task_id: task_id.to_string(),
            seed: 7,
            budget: 20,
            history: (0..n_obs).map(|i| obs(i as f64)).collect(),
            seeded_idx: vec![0],
            pending: None,
            stopped: false,
            degraded_streak: 0,
            failure_streak: 1,
            restarts: 0,
            round_iterations: n_obs.saturating_sub(1),
            own_records: Vec::new(),
        }
    }

    #[test]
    fn snapshots_survive_json_round_trip() {
        let repo = DataRepository::new();
        repo.record_observation("t", obs(1.0));
        repo.record_snapshot(snap("t", 3));
        repo.record_snapshot(snap("t", 5)); // newest wins
        let back = DataRepository::import_json(&repo.export_json()).unwrap();
        let s = back.snapshot("t").unwrap();
        assert_eq!(s.history.len(), 5);
        assert_eq!(s.failure_streak, 1);
        assert!(back.snapshot("other").is_none());
    }

    #[test]
    fn old_exports_without_snapshots_still_import() {
        // A pre-snapshot export has no `snapshots` key at all.
        let json = r#"{"tasks": {}}"#;
        let repo = DataRepository::import_json(json).unwrap();
        assert!(repo.snapshot("t").is_none());
    }

    #[test]
    fn corrupt_json_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[]",
            r#"{"tasks": 3}"#,
            r#"{"tasks": {}, "snapshots": "nope"}"#,
        ] {
            assert!(DataRepository::import_json(bad).is_err(), "{bad:?}");
        }
    }

    mod roundtrip_properties {
        use super::*;
        use proptest::prelude::*;

        fn any_obs() -> impl Strategy<Value = Observation> {
            (
                -50i64..50,
                0.01f64..1e6,
                0.01f64..1e5,
                any::<bool>(),
                proptest::collection::vec(-10.0f64..10.0, 0..3),
            )
                .prop_map(|(v, runtime, resource, failed, context)| Observation {
                    failed,
                    config: Configuration::new(vec![ParamValue::Int(v)]),
                    objective: runtime * 0.5 + resource,
                    runtime,
                    resource,
                    context,
                })
        }

        fn any_task_id() -> impl Strategy<Value = String> {
            proptest::collection::vec(0u8..26, 1..8)
                .prop_map(|v| v.into_iter().map(|c| (b'a' + c) as char).collect())
        }

        fn any_snapshot() -> impl Strategy<Value = TunerSnapshot> {
            (
                any_task_id(),
                any::<u64>(),
                1usize..100,
                proptest::collection::vec(any_obs(), 0..6),
                any::<bool>(),
                0usize..5,
                0usize..5,
                0usize..4,
            )
                .prop_map(
                    |(
                        task_id,
                        seed,
                        budget,
                        history,
                        stopped,
                        degraded_streak,
                        failure_streak,
                        restarts,
                    )| {
                        let seeded_idx = if history.is_empty() { vec![] } else { vec![0] };
                        let round_iterations = history.len().saturating_sub(seeded_idx.len());
                        TunerSnapshot {
                            task_id,
                            seed,
                            budget,
                            history,
                            seeded_idx,
                            pending: None,
                            stopped,
                            degraded_streak,
                            failure_streak,
                            restarts,
                            round_iterations,
                            own_records: Vec::new(),
                        }
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// `import_json(export_json())` is the identity on the whole
            /// repository — observations with failure flags and snapshot
            /// fields included — verified via a second export.
            #[test]
            fn export_import_is_identity(
                observations in proptest::collection::vec(any_obs(), 1..8),
                features in proptest::collection::vec(-5.0f64..5.0, 0..4),
                snapshot in any_snapshot(),
            ) {
                let repo = DataRepository::new();
                for o in &observations {
                    repo.record_observation("t", o.clone());
                }
                repo.set_meta_features("t", features.clone());
                repo.record_snapshot(snapshot.clone());

                let json = repo.export_json();
                let back = DataRepository::import_json(&json).unwrap();
                prop_assert_eq!(back.export_json(), json, "round trip changed the payload");
                let t = back.task("t").unwrap();
                prop_assert_eq!(t.observations.len(), observations.len());
                for (a, b) in t.observations.iter().zip(&observations) {
                    prop_assert_eq!(a.failed, b.failed);
                    prop_assert_eq!(a.runtime.to_bits(), b.runtime.to_bits());
                }
                let s = back.snapshot(&snapshot.task_id).unwrap();
                prop_assert_eq!(s.history.len(), snapshot.history.len());
                prop_assert_eq!(s.failure_streak, snapshot.failure_streak);
                prop_assert_eq!(s.stopped, snapshot.stopped);
            }

            /// Corrupt inputs — truncations, wrong types, junk — are
            /// rejected with `Err`, never a panic.
            #[test]
            fn corrupt_imports_error_gracefully(
                snapshot in any_snapshot(),
                cut in 1usize..40,
                junk_bytes in proptest::collection::vec(32u8..127, 0..40),
            ) {
                let junk: String = junk_bytes.into_iter().map(char::from).collect();
                let repo = DataRepository::new();
                repo.record_snapshot(snapshot);
                let json = repo.export_json();
                // Truncation never parses (the document can't be complete).
                let truncated = &json[..json.len().saturating_sub(cut)];
                prop_assert!(DataRepository::import_json(truncated).is_err());
                // Arbitrary junk either parses as a repo or errors; both
                // are fine — the property is "no panic".
                let _ = DataRepository::import_json(&junk);
            }
        }
    }

    #[test]
    fn snapshot_log_appends_and_loads_last() {
        use std::io::Write;
        let path = std::env::temp_dir().join(format!("otune-snaplog-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = SnapshotLog::new(&path);
        assert!(log.load_last().unwrap().is_none(), "missing file is None");
        log.append(&snap("t", 2)).unwrap();
        log.append(&snap("t", 4)).unwrap();
        assert_eq!(log.load_last().unwrap().unwrap().history.len(), 4);
        // A torn trailing write is skipped, not fatal.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(file, "{{\"task_id\": \"t\", \"seed\"").unwrap();
        drop(file);
        assert_eq!(log.load_last().unwrap().unwrap().history.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_log_batches_under_lazy_policy_and_flushes_on_load() {
        let path =
            std::env::temp_dir().join(format!("otune-snaplog-batch-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = SnapshotLog::with_policy(&path, SyncPolicy::Batch(3));
        log.append(&snap("t", 1)).unwrap();
        log.append(&snap("t", 2)).unwrap();
        assert_eq!(log.pending_lines(), 2, "staged, not yet on disk");
        assert!(!path.exists() || std::fs::read_to_string(&path).unwrap().is_empty());
        // A load is a recovery point: it drains the staged batch first.
        assert_eq!(log.load_last().unwrap().unwrap().history.len(), 2);
        assert_eq!(log.pending_lines(), 0);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().lines().count(),
            2,
            "both staged lines flushed by the read barrier"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_log_heals_a_torn_tail_instead_of_gluing() {
        let path =
            std::env::temp_dir().join(format!("otune-snaplog-heal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{\"torn").unwrap();
        let log = SnapshotLog::new(&path);
        log.append(&snap("t", 3)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "torn tail got its own line");
        assert!(
            text.starts_with("{\"torn\n"),
            "tail healed, not glued: {text}"
        );
        assert_eq!(log.load_last().unwrap().unwrap().history.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_log_clones_share_one_writer() {
        let path =
            std::env::temp_dir().join(format!("otune-snaplog-clone-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = SnapshotLog::with_policy(&path, SyncPolicy::Barrier);
        let other = log.clone();
        log.append(&snap("t", 1)).unwrap();
        other.append(&snap("t", 2)).unwrap();
        assert_eq!(log.pending_lines(), 2, "clones stage into the same batch");
        other.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let repo = Arc::new(DataRepository::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let repo = Arc::clone(&repo);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        repo.record_observation(&format!("task-{t}"), obs(i as f64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.len(), 4);
        for t in 0..4 {
            assert_eq!(
                repo.task(&format!("task-{t}")).unwrap().observations.len(),
                50
            );
        }
    }
}
