//! The data repository (Figure 1, component 5).
//!
//! Stores per-task runhistory and workload meta-features, shared between
//! concurrently tuned tasks (hence the lock). The JSON export/import pair
//! is the durable representation the Tencent deployment keeps in its
//! storage service.

use otune_bo::Observation;
use otune_meta::TaskRecord;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Default, Serialize, Deserialize)]
struct Repo {
    tasks: BTreeMap<String, TaskRecord>,
}

/// Thread-safe store of tuning history across tasks.
#[derive(Debug, Default)]
pub struct DataRepository {
    inner: RwLock<Repo>,
}

impl DataRepository {
    /// An empty repository.
    pub fn new() -> Self {
        DataRepository::default()
    }

    /// Number of tasks with stored history.
    pub fn len(&self) -> usize {
        self.inner.read().tasks.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append an observation to a task's runhistory (creating the task
    /// record if needed).
    pub fn record_observation(&self, task_id: &str, obs: Observation) {
        let mut repo = self.inner.write();
        let rec = repo
            .tasks
            .entry(task_id.to_string())
            .or_insert_with(|| TaskRecord {
                task_id: task_id.to_string(),
                meta_features: Vec::new(),
                observations: Vec::new(),
            });
        rec.observations.push(obs);
    }

    /// Set (or update) a task's meta-features.
    pub fn set_meta_features(&self, task_id: &str, features: Vec<f64>) {
        let mut repo = self.inner.write();
        let rec = repo
            .tasks
            .entry(task_id.to_string())
            .or_insert_with(|| TaskRecord {
                task_id: task_id.to_string(),
                meta_features: Vec::new(),
                observations: Vec::new(),
            });
        rec.meta_features = features;
    }

    /// A task's full record, if present.
    pub fn task(&self, task_id: &str) -> Option<TaskRecord> {
        self.inner.read().tasks.get(task_id).cloned()
    }

    /// All task records except `exclude` (the task being tuned), restricted
    /// to tasks that have both meta-features and history — the usable
    /// meta-learning sources.
    pub fn source_tasks(&self, exclude: &str) -> Vec<TaskRecord> {
        self.inner
            .read()
            .tasks
            .values()
            .filter(|t| {
                t.task_id != exclude && !t.meta_features.is_empty() && t.observations.len() >= 3
            })
            .cloned()
            .collect()
    }

    /// Serialize the entire repository to JSON.
    pub fn export_json(&self) -> String {
        serde_json::to_string(&*self.inner.read()).expect("repository is always serializable")
    }

    /// Load a repository from JSON.
    pub fn import_json(json: &str) -> Result<Self, serde_json::Error> {
        let repo: Repo = serde_json::from_str(json)?;
        Ok(DataRepository {
            inner: RwLock::new(repo),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{Configuration, ParamValue};

    fn obs(v: f64) -> Observation {
        Observation {
            config: Configuration::new(vec![ParamValue::Int(v as i64)]),
            objective: v,
            runtime: v,
            resource: 1.0,
            context: vec![],
        }
    }

    #[test]
    fn records_accumulate() {
        let repo = DataRepository::new();
        assert!(repo.is_empty());
        repo.record_observation("a", obs(1.0));
        repo.record_observation("a", obs(2.0));
        repo.record_observation("b", obs(3.0));
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.task("a").unwrap().observations.len(), 2);
        assert!(repo.task("zzz").is_none());
    }

    #[test]
    fn source_tasks_filter() {
        let repo = DataRepository::new();
        for i in 0..4 {
            repo.record_observation("full", obs(i as f64));
            repo.record_observation("nometa", obs(i as f64));
        }
        repo.set_meta_features("full", vec![1.0]);
        repo.record_observation("short", obs(0.0));
        repo.set_meta_features("short", vec![1.0]);

        let sources = repo.source_tasks("other");
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].task_id, "full");
        // The tuned task itself is excluded.
        assert!(repo.source_tasks("full").is_empty());
    }

    #[test]
    fn json_round_trip() {
        let repo = DataRepository::new();
        repo.record_observation("t", obs(1.5));
        repo.set_meta_features("t", vec![0.1, 0.2]);
        let json = repo.export_json();
        let back = DataRepository::import_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        let t = back.task("t").unwrap();
        assert_eq!(t.meta_features, vec![0.1, 0.2]);
        assert_eq!(t.observations.len(), 1);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let repo = Arc::new(DataRepository::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let repo = Arc::clone(&repo);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        repo.record_observation(&format!("task-{t}"), obs(i as f64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.len(), 4);
        for t in 0..4 {
            assert_eq!(
                repo.task(&format!("task-{t}")).unwrap().observations.len(),
                50
            );
        }
    }
}
