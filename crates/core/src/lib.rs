//! # otune — general and efficient online tuning for Spark
//!
//! A from-scratch Rust reproduction of *"Towards General and Efficient
//! Online Tuning for Spark"* (Li et al., PVLDB 16(12), 2023): a Bayesian
//! optimization service that tunes the configurations of periodic Spark
//! jobs **online** — along with their production executions — under a
//! generalized objective `f(x) = T(x)^β · R(x)^{1−β}` with runtime/resource
//! constraints, safe-region exploration, adaptive sub-space generation,
//! approximate gradient descent, and meta-learning transfer across tasks.
//!
//! ## Quick start
//!
//! ```
//! use otune_core::{OnlineTuner, TunerOptions};
//! use otune_space::{spark_space, ClusterScale};
//! use otune_sparksim::{hibench_task, ClusterSpec, HibenchTask, SimJob};
//!
//! // The workload: a simulated HiBench WordCount on the test cluster.
//! let space = spark_space(ClusterScale::hibench());
//! let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount));
//!
//! // Safety threshold: twice the default configuration's runtime.
//! let default_rt = job.run(&space.default_configuration(), 0).runtime_s;
//!
//! let mut tuner = OnlineTuner::new(
//!     space.clone(),
//!     TunerOptions {
//!         beta: 0.5,                 // execution cost
//!         t_max: Some(2.0 * default_rt),
//!         budget: 10,
//!         ..TunerOptions::default()
//!     },
//! );
//!
//! // The online loop: each periodic execution evaluates one suggestion.
//! for run in 0..10u64 {
//!     let cfg = tuner.suggest(&[]).unwrap();
//!     let result = job.run(&cfg, run);
//!     tuner.observe(cfg, result.runtime_s, result.resource, &[]);
//! }
//! let best = tuner.best().expect("observed at least one configuration");
//! assert!(best.runtime.is_finite());
//! ```
//!
//! The crate re-exports the substrate crates under [`prelude`] so
//! downstream users need a single dependency.

pub mod context;
pub mod controller;
pub mod fleet;
pub mod generator;
pub mod objective;
pub mod repository;
pub mod snapshot;
pub mod tuner;

pub use context::{calendar_context, datasize_context};
pub use controller::{ControllerError, OnlineTuneController, TaskHandle, TaskState};
pub use fleet::{FleetOptions, FleetReport, FleetRequest, SHARDS_ENV};
pub use generator::{ConfigGenerator, GeneratorOptions, Suggestion, SuggestionSource};
pub use objective::{Constraints, Objective};
pub use otune_gp::SparseGpConfig;
pub use repository::{DataRepository, SnapshotLog, SnapshotRecovery};
pub use snapshot::{PendingSuggestion, ResumeError, TunerSnapshot};
pub use tuner::{OnlineTuner, TunerOptions};

/// The observability layer, re-exported so applications can attach
/// sinks without a direct `otune-telemetry` dependency.
pub use otune_telemetry as telemetry;
pub use otune_telemetry::Telemetry;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::Telemetry;
    pub use crate::{
        ConfigGenerator, Constraints, DataRepository, GeneratorOptions, Objective,
        OnlineTuneController, OnlineTuner, TunerOptions,
    };
    pub use otune_bo::Observation;
    pub use otune_meta::TaskRecord;
    pub use otune_space::{
        spark_space, ClusterScale, ConfigSpace, Configuration, ParamValue, SparkParam,
    };
    pub use otune_sparksim::{
        hibench_suite, hibench_task, ClusterSpec, DataSizeModel, ExecutionResult, HibenchTask,
        SimJob,
    };
}
