//! The efficient & safe configuration generator (Algorithm 2).
//!
//! Each call to [`ConfigGenerator::suggest`] performs one iteration of the
//! paper's generation procedure:
//!
//! 1. warm-start / low-discrepancy initial design while history is scarce;
//! 2. otherwise fit surrogates for the objective and the runtime on the
//!    runhistory (plus workload context);
//! 3. every `N_AGD` iterations, propose by approximate gradient descent
//!    from the incumbent (§4.3);
//! 4. otherwise evolve the sub-space from the success/failure record
//!    (§4.1), intersect it with the safe region (§4.2), and maximize EIC
//!    over the result.

use crate::objective::{Constraints, Objective};
use otune_bo::{
    best_observation, maximize_eic_with, AdaptiveSubspace, Agd, CandidateParams, EicObjective,
    Observation, Predictor, SafeRegion, SubspaceParams, SurrogateStore,
};
use otune_gp::{IncrementalPolicy, SparseGpConfig};
use otune_pool::Pool;
use otune_space::{ConfigSpace, Configuration, Subspace};
use otune_telemetry::{metric, EventKind, ResizeDirection, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Where a suggestion came from (diagnostics and the Figure 8/9 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuggestionSource {
    /// Transferred from a similar task (§5.2).
    WarmStart,
    /// Zero-execution corpus retrieval: a distance-weighted blend of the
    /// nearest corpus neighbors' best configurations.
    Retrieval,
    /// Low-discrepancy initial design (§3.3).
    InitialDesign,
    /// Approximate gradient descent (§4.3).
    Agd,
    /// EIC maximization over the safe sub-space.
    Bo,
    /// Conservative fallback (empty candidate set after filtering).
    Fallback,
}

/// One suggested configuration with provenance.
#[derive(Debug, Clone)]
pub struct Suggestion {
    /// The configuration to evaluate next.
    pub config: Configuration,
    /// Which mechanism produced it.
    pub source: SuggestionSource,
    /// EIC value at the choice (0 for non-BO sources), used by the
    /// stopping criterion.
    pub eic: f64,
    /// Whether the choice came from inside the GP safe region.
    pub from_safe_region: bool,
}

/// Generator options with the paper's default hyperparameters.
#[derive(Debug, Clone)]
pub struct GeneratorOptions {
    /// Objective definition (β).
    pub objective: Objective,
    /// Application requirements (`T_max`, `R_max`).
    pub constraints: Constraints,
    /// Initial-design size before BO starts (warm-start configs count
    /// toward it).
    pub n_init: usize,
    /// AGD cadence `N_AGD` (a proposal every `n_agd` iterations; 0
    /// disables AGD).
    pub n_agd: usize,
    /// Safe-region pessimism γ (Eq. 8).
    pub gamma: f64,
    /// Gate the hard safe-region filter (§4.2 ablation, Figure 8).
    pub enable_safety: bool,
    /// Gate adaptive sub-space generation (§4.1 ablation, Figure 7);
    /// disabled = search the full space.
    pub enable_subspace: bool,
    /// Sub-space evolution parameters.
    pub subspace: SubspaceParams,
    /// Candidate-generation parameters for acquisition maximization.
    pub candidates: CandidateParams,
    /// Refresh the fANOVA importance ranking every this many observations.
    pub fanova_period: usize,
    /// Surrogate maintenance across iterations: rank-one factor updates,
    /// warm-started hyperparameter re-searches, and the fit cache.
    pub incremental: IncrementalPolicy,
    /// Local-subset sparse GP for histories past its threshold: surrogates
    /// are fitted on the `subset_size` observations nearest the incumbent
    /// instead of the full history. `None` keeps every fit exact.
    pub sparse: Option<SparseGpConfig>,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Worker pool for surrogate fitting and acquisition maximization.
    /// Suggestions are bitwise-identical for every pool width.
    pub pool: Pool,
    /// Corpus-retrieved bootstrap configurations: when non-empty they
    /// replace the low-discrepancy burn-in points `0..len`, serving as
    /// the zero-execution initial design. Empty (the default) leaves
    /// every suggestion bitwise-identical to the retrieval-free path.
    pub retrieval: Vec<Configuration>,
}

impl GeneratorOptions {
    /// Paper defaults for a space of `n_params` parameters.
    pub fn paper_defaults(n_params: usize) -> Self {
        GeneratorOptions {
            objective: Objective::cost(),
            constraints: Constraints::none(),
            n_init: 3,
            n_agd: 5,
            gamma: 1.0,
            enable_safety: true,
            enable_subspace: true,
            subspace: SubspaceParams::paper_defaults(n_params),
            candidates: CandidateParams::default(),
            fanova_period: 5,
            incremental: IncrementalPolicy::from_env(),
            sparse: SparseGpConfig::from_env(),
            seed: 0,
            pool: Pool::from_env(),
            retrieval: Vec::new(),
        }
    }
}

/// The stateful configuration generator for one tuning task.
pub struct ConfigGenerator {
    space: ConfigSpace,
    opts: GeneratorOptions,
    /// Persistent fitted surrogates, reused while the history only grows.
    store: SurrogateStore,
    subspace_mgr: AdaptiveSubspace,
    resource_fn: Arc<dyn Fn(&Configuration) -> f64 + Send + Sync>,
    rng: StdRng,
    /// History length already fed into the success/failure counters.
    processed: usize,
    /// Best feasible objective seen while processing (drives "success").
    running_best: f64,
    /// Iteration counter (suggestions handed out).
    iteration: usize,
    /// Observability handle (disabled by default).
    telemetry: Telemetry,
}

impl ConfigGenerator {
    /// Create a generator. `expert_ranking` orders parameters by prior
    /// importance (most important first); `resource_fn` is the analytic
    /// white-box `R(x)`.
    pub fn new(
        space: ConfigSpace,
        opts: GeneratorOptions,
        expert_ranking: Vec<usize>,
        resource_fn: Arc<dyn Fn(&Configuration) -> f64 + Send + Sync>,
    ) -> Self {
        let subspace_mgr = AdaptiveSubspace::new(opts.subspace, expert_ranking);
        let rng = StdRng::seed_from_u64(opts.seed ^ 0xa5a5_5a5a_dead_beef);
        let mut store = SurrogateStore::new(opts.incremental);
        store.set_sparse(opts.sparse);
        ConfigGenerator {
            space,
            opts,
            store,
            subspace_mgr,
            resource_fn,
            rng,
            processed: 0,
            running_best: f64::INFINITY,
            iteration: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; suggestions emit `SurrogateFitted`,
    /// `AgdStep`, and `SubspaceResized` events through it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The generator's options.
    pub fn options(&self) -> &GeneratorOptions {
        &self.opts
    }

    /// Current sub-space size `K`.
    pub fn subspace_k(&self) -> usize {
        self.subspace_mgr.k()
    }

    /// Current importance ranking (most important first).
    pub fn ranking(&self) -> &[usize] {
        self.subspace_mgr.ranking()
    }

    /// Whether the *next* `suggest` call will still serve the initial
    /// design (warm-start, retrieval, or low-discrepancy probes) rather
    /// than fit surrogates. Lets callers skip preparing expensive inputs
    /// — e.g. the meta ensemble — that the burn-in phase ignores.
    pub fn in_initial_design(&self, history_len: usize, n_warm: usize) -> bool {
        self.iteration < self.opts.n_init.max(n_warm) || history_len < 2
    }

    /// Suggest the next configuration (Algorithm 2).
    ///
    /// `history` is the full runhistory; `context` the current workload
    /// features (data size or calendar features — must match the widths in
    /// history); `warm_configs` the meta-learned initial design (§5.2);
    /// `meta_objective` an optional ensemble surrogate replacing the plain
    /// objective GP (§5.2).
    pub fn suggest(
        &mut self,
        history: &[Observation],
        context: &[f64],
        warm_configs: &[Configuration],
        meta_objective: Option<&dyn Predictor>,
    ) -> Suggestion {
        self.ingest(history);
        let i = self.iteration;
        self.iteration += 1;

        // --- Initial design (Algorithm 1, line 1) ---
        if i < warm_configs.len() {
            return Suggestion {
                config: warm_configs[i].clone(),
                source: SuggestionSource::WarmStart,
                eic: 0.0,
                from_safe_region: true,
            };
        }
        let init_total = self.opts.n_init.max(warm_configs.len());
        if i < init_total || history.len() < 2 {
            let probe_idx = i.saturating_sub(warm_configs.len());
            // Corpus retrieval replaces burn-in points 0..k when the
            // retrieval index was confident; later probes (and the whole
            // design when retrieval is empty or fell back) keep their
            // pre-retrieval low-discrepancy indices unchanged.
            if let Some(config) = self.opts.retrieval.get(probe_idx) {
                return Suggestion {
                    config: config.clone(),
                    source: SuggestionSource::Retrieval,
                    eic: 0.0,
                    from_safe_region: true,
                };
            }
            return Suggestion {
                config: self
                    .space
                    .low_discrepancy_nth(probe_idx, self.opts.seed ^ 0x1234),
                source: SuggestionSource::InitialDesign,
                eic: 0.0,
                from_safe_region: true,
            };
        }

        // --- Surrogates (Algorithm 2, line 1) ---
        // Runtime and objective are modeled in log space: both metrics span
        // orders of magnitude across the configuration space, and the GP's
        // standardization alone cannot keep the basin around the optimum
        // resolvable next to spill blow-ups.
        let t = &self.opts.constraints;
        let incumbent = best_observation(history, t.t_max, t.r_max).expect("history is non-empty");
        let log_history: Vec<Observation> = history
            .iter()
            .map(|o| Observation {
                objective: o.objective.max(1e-9).ln(),
                runtime: o.runtime.max(1e-9).ln(),
                ..o.clone()
            })
            .collect();
        // The store reuses last iteration's fits whenever the (log-space)
        // history only grew: new rows are absorbed by rank-one factor
        // updates, and full hyperparameter searches run only on the
        // store's re-search schedule. Editing history — or a transform
        // change rewriting an old target — invalidates via fingerprints.
        // With the sparse GP enabled, the selection centers on the
        // incumbent under the *current* context — the neighbourhood the
        // acquisition search explores.
        let center = self.opts.sparse.map(|_| {
            otune_bo::surrogate::encode_with_context(&self.space, &incumbent.config, context)
        });
        let fitted = self.store.prepare_with_center(
            &self.space,
            &log_history,
            self.opts.seed,
            center.as_deref(),
            &self.telemetry,
            &self.opts.pool,
        );
        let Ok((runtime_gp, objective_gp)) = fitted else {
            // Degenerate history (e.g. identical rows) — explore.
            self.store.clear();
            self.telemetry.incr(metric::FALLBACK_SUGGESTIONS);
            return Suggestion {
                config: self.space.sample(&mut self.rng),
                source: SuggestionSource::Fallback,
                eic: 0.0,
                from_safe_region: false,
            };
        };
        for model in ["runtime_gp", "objective_gp"] {
            self.telemetry.emit(
                i as u64,
                EventKind::SurrogateFitted {
                    model: model.to_string(),
                    n_obs: history.len(),
                },
            );
        }

        // --- AGD every N_AGD iterations (Algorithm 2, lines 2-4) ---
        // §4.3 applies AGD "when observations D are sufficient to
        // approximate the objective function": with a thin history the
        // surrogate gradient is noise and the step wastes an online run.
        if self.opts.n_agd > 0 && history.len() >= 12 && (i + 1).is_multiple_of(self.opts.n_agd) {
            let _trace = self.telemetry.trace_span("agd");
            let agd = Agd {
                beta: self.opts.objective.beta,
                eta: 0.04,
                log_runtime: true,
                ..Agd::default()
            };
            let proposal = agd.propose(
                &self.space,
                &incumbent.config,
                context,
                &runtime_gp,
                &*self.resource_fn.clone(),
            );
            // AGD proposals are online executions too: they must clear the
            // same safe region as BO suggestions (§4.2), else they would be
            // the one unguarded path to an SLA-violating run.
            let safe = match (self.opts.enable_safety, self.opts.constraints.t_max) {
                (true, Some(t_max)) => {
                    let mut x = self.space.encode(&proposal);
                    x.extend_from_slice(context);
                    let (m, v) = runtime_gp.predict(&x);
                    m + self.opts.gamma * v.max(0.0).sqrt() <= t_max.max(1e-9).ln()
                }
                _ => true,
            };
            let within_r = self
                .opts
                .constraints
                .r_max
                .is_none_or(|r| (self.resource_fn)(&proposal) <= r);
            // A gradient step must also *predict* descent — if the
            // surrogate thinks the step lands above the incumbent, the
            // gradient was noise and BO spends the iteration instead.
            let predicted_descent = {
                let mut x = self.space.encode(&proposal);
                x.extend_from_slice(context);
                objective_gp.predict_mean(&x) < incumbent.objective.max(1e-9).ln()
            };
            let accepted = safe && within_r && predicted_descent && proposal != incumbent.config;
            self.telemetry
                .emit(i as u64, EventKind::AgdStep { accepted });
            if accepted {
                return Suggestion {
                    config: proposal,
                    source: SuggestionSource::Agd,
                    eic: 0.0,
                    from_safe_region: true,
                };
            }
            // Zero gradient or unsafe proposal: fall through to BO.
        }

        // --- Sub-space (Algorithm 2, line 6) ---
        let subspace_span = self.telemetry.trace_span("subspace");
        let sub = if self.opts.enable_subspace {
            self.subspace_mgr
                .build(&self.space, incumbent.config.clone())
        } else {
            Subspace::full(&self.space, incumbent.config.clone())
                .expect("full subspace is always valid")
        };
        subspace_span.finish();
        self.telemetry
            .gauge(metric::SUBSPACE_K, self.subspace_mgr.k() as f64);

        // --- Safe region ∩ sub-space, EIC maximization (lines 7-8) ---
        // Thresholds move to log space along with the surrogates.
        let mut safe_regions = Vec::new();
        if self.opts.enable_safety {
            if let Some(t_max) = self.opts.constraints.t_max {
                safe_regions.push(SafeRegion::new(
                    &runtime_gp,
                    t_max.max(1e-9).ln(),
                    self.opts.gamma,
                ));
            }
        }
        // The EIC probability factor is part of the safety machinery too:
        // with safety disabled (the Figure 8 "vanilla BO" arm) plain EI is
        // used, matching how the paper's ablation ignores the constraint.
        let mut constraints: Vec<(&otune_gp::GaussianProcess, f64)> = Vec::new();
        if self.opts.enable_safety {
            if let Some(t_max) = self.opts.constraints.t_max {
                constraints.push((&runtime_gp, t_max.max(1e-9).ln()));
            }
        }
        let objective: &dyn Predictor = match meta_objective {
            Some(m) => m,
            None => &*objective_gp,
        };
        let eic_obj = EicObjective {
            objective_gp: objective,
            // In log space, EI directly measures expected *relative*
            // improvement — which also matches the paper's "EI below 10%"
            // stopping rule.
            y_best: incumbent.objective.max(1e-9).ln(),
            constraints,
        };
        let resource_fn = self.resource_fn.clone();
        let r_max = self.opts.constraints.r_max;
        let analytic = r_max.map(|r| move |c: &Configuration| resource_fn(c) <= r);
        let analytic_ref: Option<&dyn Fn(&Configuration) -> bool> = analytic
            .as_ref()
            .map(|f| f as &dyn Fn(&Configuration) -> bool);

        let choice = maximize_eic_with(
            &sub,
            context,
            &eic_obj,
            &safe_regions,
            analytic_ref,
            Some(&incumbent.config),
            self.opts.candidates,
            &mut self.rng,
            &self.telemetry,
            &self.opts.pool,
        );
        Suggestion {
            config: choice.config,
            source: SuggestionSource::Bo,
            eic: choice.eic,
            from_safe_region: choice.from_safe_region,
        }
    }

    /// Feed new observations into the success/failure counters and the
    /// fANOVA ranking refresh.
    fn ingest(&mut self, history: &[Observation]) {
        let t = &self.opts.constraints;
        while self.processed < history.len() {
            let o = &history[self.processed];
            self.processed += 1;
            let feasible = o.is_feasible(t.t_max, t.r_max);
            let success = feasible && o.objective < self.running_best;
            if success {
                self.running_best = o.objective;
            }
            // Counters only matter once BO is active.
            if self.processed > self.opts.n_init {
                let k_before = self.subspace_mgr.k();
                let k_after = self.subspace_mgr.record(success);
                if k_after != k_before {
                    let direction = if k_after > k_before {
                        ResizeDirection::Grow
                    } else {
                        ResizeDirection::Shrink
                    };
                    self.telemetry.emit(
                        self.iteration as u64,
                        EventKind::SubspaceResized {
                            k: k_after,
                            direction,
                        },
                    );
                }
            }
            if self.opts.fanova_period > 0
                && self.processed >= 2 * self.opts.fanova_period
                && self.processed.is_multiple_of(self.opts.fanova_period)
            {
                let _trace = self.telemetry.trace_span("fanova_refresh");
                let x: Vec<Vec<f64>> = history[..self.processed]
                    .iter()
                    .map(|o| self.space.encode(&o.config))
                    .collect();
                let y: Vec<f64> = history[..self.processed]
                    .iter()
                    .map(|o| o.objective)
                    .collect();
                self.subspace_mgr.refresh_ranking(&x, &y, self.opts.seed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{ParamValue, Parameter};

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("n", 1, 50, 10),
            Parameter::int("m", 1, 32, 8),
            Parameter::float("frac", 0.1, 0.9, 0.5),
            Parameter::boolean("flag", false),
        ])
    }

    fn toy_resource() -> Arc<dyn Fn(&Configuration) -> f64 + Send + Sync> {
        Arc::new(|c: &Configuration| {
            c[0].as_int().unwrap() as f64 * (1.0 + 0.5 * c[1].as_int().unwrap() as f64)
        })
    }

    /// Toy runtime: decreasing in n, penalized when m is small.
    fn toy_runtime(c: &Configuration) -> f64 {
        let n = c[0].as_int().unwrap() as f64;
        let m = c[1].as_int().unwrap() as f64;
        400.0 / n + 30.0 / m + 10.0
    }

    fn generator(opts: GeneratorOptions) -> ConfigGenerator {
        ConfigGenerator::new(toy_space(), opts, vec![0, 1, 2, 3], toy_resource())
    }

    fn evaluate(space: &ConfigSpace, cfg: &Configuration, beta: f64) -> Observation {
        let _ = space;
        let rt = toy_runtime(cfg);
        let r = toy_resource()(cfg);
        Observation {
            failed: false,
            config: cfg.clone(),
            objective: rt.powf(beta) * r.powf(1.0 - beta),
            runtime: rt,
            resource: r,
            context: vec![],
        }
    }

    #[test]
    fn initial_design_precedes_bo() {
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.n_init = 3;
        let mut g = generator(opts);
        let mut history = Vec::new();
        for i in 0..3 {
            let s = g.suggest(&history, &[], &[], None);
            assert_eq!(s.source, SuggestionSource::InitialDesign, "iter {i}");
            history.push(evaluate(&toy_space(), &s.config, 0.5));
        }
        let s = g.suggest(&history, &[], &[], None);
        assert!(
            matches!(s.source, SuggestionSource::Bo | SuggestionSource::Agd),
            "BO starts after init: {:?}",
            s.source
        );
    }

    #[test]
    fn warm_configs_are_used_first_and_verbatim() {
        let space = toy_space();
        let warm = vec![
            space
                .configuration(vec![
                    ParamValue::Int(5),
                    ParamValue::Int(4),
                    ParamValue::Float(0.3),
                    ParamValue::Bool(true),
                ])
                .unwrap(),
            space
                .configuration(vec![
                    ParamValue::Int(25),
                    ParamValue::Int(16),
                    ParamValue::Float(0.7),
                    ParamValue::Bool(false),
                ])
                .unwrap(),
        ];
        let mut g = generator(GeneratorOptions::paper_defaults(4));
        let mut history = Vec::new();
        for w in &warm {
            let s = g.suggest(&history, &[], &warm, None);
            assert_eq!(s.source, SuggestionSource::WarmStart);
            assert_eq!(&s.config, w);
            history.push(evaluate(&space, &s.config, 0.5));
        }
    }

    #[test]
    fn retrieval_replaces_burn_in_prefix_only() {
        let space = toy_space();
        let retrieval = vec![
            space
                .configuration(vec![
                    ParamValue::Int(7),
                    ParamValue::Int(3),
                    ParamValue::Float(0.2),
                    ParamValue::Bool(true),
                ])
                .unwrap(),
            space
                .configuration(vec![
                    ParamValue::Int(30),
                    ParamValue::Int(20),
                    ParamValue::Float(0.8),
                    ParamValue::Bool(false),
                ])
                .unwrap(),
        ];
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.n_init = 3;
        opts.retrieval = retrieval.clone();
        let mut g = generator(opts);
        let mut plain = generator(GeneratorOptions::paper_defaults(4));
        let mut history = Vec::new();
        // Probes 0 and 1 serve the retrieved configs verbatim.
        for r in &retrieval {
            let s = g.suggest(&history, &[], &[], None);
            assert_eq!(s.source, SuggestionSource::Retrieval);
            assert_eq!(&s.config, r);
            history.push(evaluate(&toy_space(), &s.config, 0.5));
        }
        // Probe 2 falls through to the *same* low-discrepancy point the
        // retrieval-free generator serves at index 2.
        let mut plain_history = Vec::new();
        for _ in 0..2 {
            let s = plain.suggest(&plain_history, &[], &[], None);
            plain_history.push(evaluate(&toy_space(), &s.config, 0.5));
        }
        let s = g.suggest(&history, &[], &[], None);
        let p = plain.suggest(&plain_history, &[], &[], None);
        assert_eq!(s.source, SuggestionSource::InitialDesign);
        assert_eq!(s.config, p.config, "unserved probe keeps its index");
    }

    #[test]
    fn empty_retrieval_is_bitwise_identical() {
        let space = toy_space();
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.retrieval = Vec::new();
        let mut a = generator(opts);
        let mut b = generator(GeneratorOptions::paper_defaults(4));
        let mut ha = Vec::new();
        let mut hb = Vec::new();
        for _ in 0..10 {
            let sa = a.suggest(&ha, &[], &[], None);
            let sb = b.suggest(&hb, &[], &[], None);
            let bits = |c: &Configuration| -> Vec<u64> {
                space.encode(c).iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(&sa.config), bits(&sb.config));
            ha.push(evaluate(&space, &sa.config, 0.5));
            hb.push(evaluate(&space, &sb.config, 0.5));
        }
    }

    #[test]
    fn agd_fires_on_schedule_once_history_suffices() {
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.n_init = 3;
        opts.n_agd = 5;
        // The assertion below is stream-dependent: whether the gradient
        // step predicts descent at exactly iteration 14/19 hinges on which
        // BO candidates the RNG happened to draw earlier. This seed picks
        // a stream (under the vendored xoshiro-based StdRng) where the
        // schedule is exercised rather than vetoed; retune it with the
        // ignored `scan_agd_seeds` helper below if suggestion streams move.
        opts.seed = 7;
        let mut g = generator(opts);
        let space = toy_space();
        let mut history = Vec::new();
        let mut sources = Vec::new();
        for _ in 0..20 {
            let s = g.suggest(&history, &[], &[], None);
            sources.push(s.source);
            history.push(evaluate(&space, &s.config, 0.5));
        }
        // AGD needs ≥12 observations and fires at (i+1) % 5 == 0 → i = 14, 19
        // (earlier slots fall through to BO while history is thin); the
        // proposal may still be vetoed when the surrogate predicts no
        // descent, in which case the slot runs BO.
        for i in [4usize, 9] {
            assert_ne!(
                sources[i],
                SuggestionSource::Agd,
                "too early at {i}: {sources:?}"
            );
        }
        let fired = [14usize, 19]
            .iter()
            .filter(|&&i| sources[i] == SuggestionSource::Agd)
            .count();
        assert!(fired >= 1, "AGD fires on schedule: {sources:?}");
    }

    #[test]
    fn agd_disabled_when_cadence_zero() {
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.n_agd = 0;
        let mut g = generator(opts);
        let space = toy_space();
        let mut history = Vec::new();
        for _ in 0..10 {
            let s = g.suggest(&history, &[], &[], None);
            assert_ne!(s.source, SuggestionSource::Agd);
            history.push(evaluate(&space, &s.config, 0.5));
        }
    }

    #[test]
    fn optimizes_toy_cost_objective() {
        let opts = GeneratorOptions::paper_defaults(4);
        let mut g = generator(opts);
        let space = toy_space();
        let mut history = vec![evaluate(&space, &space.default_configuration(), 0.5)];
        for _ in 0..20 {
            let s = g.suggest(&history, &[], &[], None);
            history.push(evaluate(&space, &s.config, 0.5));
        }
        let first = history[0].objective;
        let best = history
            .iter()
            .map(|o| o.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(best < first * 0.8, "improved: {best} vs initial {first}");
    }

    #[test]
    fn safety_keeps_suggestions_inside_threshold_mostly() {
        let space = toy_space();
        let default_rt = toy_runtime(&space.default_configuration());
        let t_max = default_rt * 1.5;
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.constraints = Constraints {
            t_max: Some(t_max),
            r_max: None,
        };
        opts.n_init = 3;
        opts.seed = 11;
        let mut g = generator(opts);
        let mut history = vec![evaluate(&space, &space.default_configuration(), 0.5)];
        let mut violations = 0;
        let mut total = 0;
        for _ in 0..20 {
            let s = g.suggest(&history, &[], &[], None);
            let o = evaluate(&space, &s.config, 0.5);
            if matches!(s.source, SuggestionSource::Bo) {
                total += 1;
                if o.runtime > t_max {
                    violations += 1;
                }
            }
            history.push(o);
        }
        assert!(total > 5, "enough BO iterations: {total}");
        assert!(
            (violations as f64) < total as f64 * 0.4,
            "safety limits violations: {violations}/{total}"
        );
    }

    #[test]
    fn analytic_resource_constraint_is_hard() {
        let space = toy_space();
        let r_max = 100.0;
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.constraints = Constraints {
            t_max: None,
            r_max: Some(r_max),
        };
        opts.n_init = 2;
        let mut g = generator(opts);
        // Seed history with feasible points so the incumbent is feasible.
        let mut history = vec![evaluate(&space, &space.default_configuration(), 0.5)];
        for _ in 0..15 {
            let s = g.suggest(&history, &[], &[], None);
            if matches!(s.source, SuggestionSource::Bo) {
                assert!(
                    toy_resource()(&s.config) <= r_max,
                    "BO suggestions respect R_max"
                );
            }
            history.push(evaluate(&space, &s.config, 0.5));
        }
    }

    #[test]
    fn subspace_evolves_with_failures() {
        let mut opts = GeneratorOptions::paper_defaults(4);
        opts.subspace = SubspaceParams {
            k_init: 3,
            k_min: 1,
            k_max: 4,
            tau_success: 2,
            tau_failure: 2,
            step: 1,
        };
        opts.n_init = 2;
        opts.n_agd = 0;
        let mut g = generator(opts);
        let space = toy_space();
        // Feed a history that never improves → failures shrink K.
        let mut history = vec![evaluate(&space, &space.default_configuration(), 0.5)];
        // Make the "best" extremely good so every new obs is a failure.
        history[0].objective = -1e9;
        for _ in 0..8 {
            let s = g.suggest(&history, &[], &[], None);
            let mut o = evaluate(&space, &s.config, 0.5);
            o.objective = 1.0;
            history.push(o);
        }
        assert!(g.subspace_k() < 3, "K shrank: {}", g.subspace_k());
    }

    #[test]
    #[ignore = "seed-scan helper, run manually when retuning stream-sensitive seeds"]
    fn scan_agd_seeds() {
        let space = toy_space();
        for seed in 0..40u64 {
            let mut opts = GeneratorOptions::paper_defaults(4);
            opts.n_init = 3;
            opts.n_agd = 5;
            opts.seed = seed;
            let mut g = generator(opts);
            let mut history = Vec::new();
            let mut sources = Vec::new();
            for _ in 0..20 {
                let s = g.suggest(&history, &[], &[], None);
                sources.push(s.source);
                history.push(evaluate(&space, &s.config, 0.5));
            }
            let fired = [14usize, 19]
                .iter()
                .filter(|&&i| sources[i] == SuggestionSource::Agd)
                .count();
            let early = [4usize, 9]
                .iter()
                .filter(|&&i| sources[i] == SuggestionSource::Agd)
                .count();
            println!("seed {seed}: fired={fired} early={early}");
        }
    }
}
