//! Workload-context features for the datasize-aware surrogate (§3.3).
//!
//! The surrogate input is `encode(config) ++ context`. When the input data
//! size is observable, the context is its normalized value; when it is not
//! (the paper: "due to data privacy issue, input data size is not always
//! accessible in production tasks"), the hour of the day and the day of
//! the week characterize the periodic change of data instead. Calendar
//! features are cyclically encoded (sin/cos pairs) so hour 23 and hour 0
//! are neighbours for the SE kernel.

/// Context from an observed data size, normalized by the task's baseline.
pub fn datasize_context(size_gb: f64, baseline_gb: f64) -> Vec<f64> {
    vec![size_gb / baseline_gb.max(1e-9)]
}

/// Calendar fallback context: cyclic encodings of hour-of-day (0–23) and
/// day-of-week (0–6). Four features, all in `[0, 1]`.
pub fn calendar_context(hour_of_day: u32, day_of_week: u32) -> Vec<f64> {
    use std::f64::consts::TAU;
    let h = (hour_of_day % 24) as f64 / 24.0;
    let d = (day_of_week % 7) as f64 / 7.0;
    vec![
        0.5 + 0.5 * (TAU * h).sin(),
        0.5 + 0.5 * (TAU * h).cos(),
        0.5 + 0.5 * (TAU * d).sin(),
        0.5 + 0.5 * (TAU * d).cos(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn datasize_context_normalizes() {
        assert_eq!(datasize_context(150.0, 100.0), vec![1.5]);
        assert!(datasize_context(1.0, 0.0)[0].is_finite());
    }

    #[test]
    fn calendar_features_are_bounded() {
        for h in 0..24 {
            for d in 0..7 {
                let c = calendar_context(h, d);
                assert_eq!(c.len(), 4);
                assert!(c.iter().all(|v| (0.0..=1.0).contains(v)), "{c:?}");
            }
        }
    }

    #[test]
    fn midnight_wraps_to_neighbour_of_late_evening() {
        // Hour 23 must be closer to hour 0 than to hour 12.
        let h23 = calendar_context(23, 0);
        let h0 = calendar_context(0, 0);
        let h12 = calendar_context(12, 0);
        assert!(dist(&h23, &h0) < dist(&h23, &h12));
        // Sunday (6) wraps to Monday (0).
        let d6 = calendar_context(0, 6);
        let d0 = calendar_context(0, 0);
        let d3 = calendar_context(0, 3);
        assert!(dist(&d6, &d0) < dist(&d6, &d3));
    }

    #[test]
    fn out_of_range_inputs_wrap() {
        assert_eq!(calendar_context(24, 7), calendar_context(0, 0));
        assert_eq!(calendar_context(25, 8), calendar_context(1, 1));
    }
}
