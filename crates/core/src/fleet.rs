//! Fleet execution layer: batched waves over the sharded task map.
//!
//! The deployed service (§6) tunes tens of thousands of periodic tasks per
//! day; driving them one `request_config`/`report_result` at a time leaves
//! the controller single-threaded and re-does cross-task work per task.
//! This module adds the fleet hot path:
//!
//! * **Sharding** — the task map is hashed into [`FleetOptions::shards`]
//!   disjoint shards ([`super::controller`]). A batched wave groups its
//!   requests by shard and fans the groups across [`FleetOptions::pool`],
//!   one worker per shard, so no two workers ever touch the same task.
//! * **Batched APIs** — [`OnlineTuneController::request_configs`] and
//!   [`OnlineTuneController::report_results`] process a whole wave of
//!   per-task suggest/observe work and return per-request results in input
//!   order.
//!
//! **Determinism invariant.** Each task's tuner owns its RNG stream and
//! history; a wave only changes *which worker* runs a task's step, never
//! the step itself. Within a wave, each task's requests are processed in
//! input order. A task's suggestion trace is therefore bitwise identical
//! whether it is driven sequentially or through waves, at any
//! `OTUNE_SHARDS` and any `OTUNE_THREADS`, and regardless of how tasks are
//! interleaved across waves. The one scoped exception: warm-start
//! injection reads the shared repository, so traces of tasks using
//! meta-feature transfer depend (as they always have) on the order in
//! which *other* tasks' results arrive. Waves apply injections in a
//! deterministic post-wave phase in request order.

use crate::controller::{ControllerError, OnlineTuneController, TaskHandle};
use otune_pool::Pool;
use otune_space::Configuration;
use otune_telemetry::{metric, trace_key};

/// Environment variable selecting the shard count.
pub const SHARDS_ENV: &str = "OTUNE_SHARDS";

/// Default shard count when `OTUNE_SHARDS` is unset.
const DEFAULT_SHARDS: usize = 8;

/// Default reports between scheduled similarity-model refits.
const DEFAULT_N_REFIT: usize = 32;

/// Fleet-level controller options.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Shards the task map is hashed into (≥ 1). Only affects how batched
    /// waves parallelize, never any suggestion.
    pub shards: usize,
    /// Reports between scheduled similarity-model refits. The model is
    /// also refit whenever the eligible source-task set changes.
    pub n_refit: usize,
    /// Pool fanning wave shard-groups across workers.
    pub pool: Pool,
}

impl FleetOptions {
    /// Options from the environment: `OTUNE_SHARDS` for the shard count,
    /// `OTUNE_THREADS` (via [`Pool::from_env`]) for the wave pool.
    pub fn from_env() -> Self {
        let shards = std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_SHARDS);
        FleetOptions {
            shards,
            n_refit: DEFAULT_N_REFIT,
            pool: Pool::from_env(),
        }
    }
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

/// One configuration request in a batched wave.
#[derive(Debug, Clone)]
pub struct FleetRequest<'a> {
    /// The task to suggest for.
    pub handle: &'a TaskHandle,
    /// Execution context (§4.3) for this periodic run.
    pub context: &'a [f64],
}

/// One result report in a batched wave.
#[derive(Debug, Clone)]
pub struct FleetReport<'a> {
    /// The task that executed.
    pub handle: &'a TaskHandle,
    /// The configuration that ran (must match the pending suggestion).
    pub config: Configuration,
    /// Observed runtime in seconds.
    pub runtime_s: f64,
    /// Observed resource cost.
    pub resource: f64,
    /// Execution context the run was suggested under.
    pub context: &'a [f64],
    /// Event-log meta-features; the first arrival triggers warm-start
    /// injection.
    pub meta_features: Option<Vec<f64>>,
}

impl OnlineTuneController {
    /// Group wave items by shard: `(shard index, input indices)` with each
    /// group preserving input order, so per-task request order is exactly
    /// the input order.
    fn shard_groups<'h>(
        &self,
        handles: impl Iterator<Item = &'h TaskHandle>,
    ) -> Vec<(usize, Vec<usize>)> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, h) in handles.enumerate() {
            groups[self.shard_of(h)].push(i);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect()
    }

    /// Step 1, batched (Figure 1): suggest a configuration for every
    /// request in the wave. Results come back in input order; each task's
    /// trace is bitwise identical to driving it through
    /// [`OnlineTuneController::request_config`].
    pub fn request_configs(
        &mut self,
        requests: &[FleetRequest<'_>],
    ) -> Vec<Result<Configuration, ControllerError>> {
        let span = self.telemetry.span(metric::FLEET_WAVE_S);
        let wave_trace = self.telemetry.trace_span("fleet_wave_suggest");
        let ctx = self.telemetry.trace_ctx();
        self.telemetry.incr(metric::FLEET_WAVES);
        self.telemetry
            .add(metric::FLEET_REQUESTS, requests.len() as u64);
        let groups = self.shard_groups(requests.iter().map(|r| r.handle));
        let pool = self.fleet.pool.clone();
        let this = &*self;
        let per_group: Vec<Vec<(usize, Result<Configuration, ControllerError>)>> =
            pool.map(&groups, |_, (shard_idx, idxs)| {
                let _adopted = this.telemetry.trace_adopt(ctx.clone());
                let _shard_trace = this.telemetry.trace_span_keyed("shard", *shard_idx as u64);
                let mut shard = this.lock_shard(*shard_idx);
                idxs.iter()
                    .map(|&i| {
                        let req = &requests[i];
                        let _task_trace = this
                            .telemetry
                            .trace_span_keyed("task", trace_key(req.handle.as_str()));
                        let res = match shard.get_mut(req.handle) {
                            Some(entry) => entry
                                .tuner
                                .suggest(req.context)
                                .map_err(ControllerError::Tuner),
                            None => Err(ControllerError::UnknownTask),
                        };
                        (i, res)
                    })
                    .collect()
            });
        wave_trace.finish();
        drop(span);
        scatter(requests.len(), per_group)
    }

    /// Step 2, batched (Figure 1): absorb a wave of execution results. The
    /// per-task work (observe, telemetry, repository mirror) fans across
    /// the pool; warm-start injections then run in a deterministic
    /// sequential phase in input order. Results come back in input order.
    pub fn report_results(
        &mut self,
        reports: &[FleetReport<'_>],
    ) -> Vec<Result<(), ControllerError>> {
        let span = self.telemetry.span(metric::FLEET_WAVE_S);
        let wave_trace = self.telemetry.trace_span("fleet_wave_report");
        let ctx = self.telemetry.trace_ctx();
        self.telemetry.incr(metric::FLEET_WAVES);
        self.telemetry
            .add(metric::FLEET_REPORTS, reports.len() as u64);
        let groups = self.shard_groups(reports.iter().map(|r| r.handle));
        let pool = self.fleet.pool.clone();
        let this = &*self;
        type Absorbed = Vec<(usize, Result<Option<Vec<f64>>, ControllerError>)>;
        let per_group: Vec<Absorbed> = pool.map(&groups, |_, (shard_idx, idxs)| {
            let _adopted = this.telemetry.trace_adopt(ctx.clone());
            let _shard_trace = this.telemetry.trace_span_keyed("shard", *shard_idx as u64);
            let mut shard = this.lock_shard(*shard_idx);
            idxs.iter()
                .map(|&i| {
                    let rep = &reports[i];
                    let _task_trace = this
                        .telemetry
                        .trace_span_keyed("task", trace_key(rep.handle.as_str()));
                    let res = match shard.get_mut(rep.handle) {
                        Some(entry) => {
                            Self::absorb_report(&this.repository, &this.shared_meta, entry, rep)
                        }
                        None => Err(ControllerError::UnknownTask),
                    };
                    (i, res)
                })
                .collect()
        });
        wave_trace.finish();
        drop(span);
        let absorbed = scatter(reports.len(), per_group);
        // Deterministic post-wave phase: refit bookkeeping and warm-start
        // injections in input order.
        absorbed
            .into_iter()
            .enumerate()
            .map(|(i, res)| {
                res.map(|inject| {
                    self.sim.reports_since_refit += 1;
                    if let Some(features) = inject {
                        self.maybe_inject(reports[i].handle, &features);
                    }
                })
            })
            .collect()
    }
}

/// Scatter `(input index, result)` pairs back into input order.
fn scatter<R>(n: usize, per_group: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for group in per_group {
        for (i, r) in group {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every wave item produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::DataRepository;
    use crate::tuner::TunerOptions;
    use otune_space::{ConfigSpace, Parameter};
    use std::sync::Arc;

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("n", 1, 50, 10),
            Parameter::int("m", 1, 32, 8),
        ])
    }

    fn toy_eval(c: &Configuration) -> (f64, f64) {
        let n = c[0].as_int().unwrap() as f64;
        let m = c[1].as_int().unwrap() as f64;
        (400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
    }

    fn controller(shards: usize, threads: usize) -> OnlineTuneController {
        OnlineTuneController::with_options(
            Arc::new(DataRepository::new()),
            FleetOptions {
                shards,
                n_refit: 32,
                pool: Pool::new(threads),
            },
        )
    }

    #[test]
    fn batched_wave_matches_sequential_driving() {
        let n_tasks = 6;
        let budget = 4;
        let opts = TunerOptions {
            budget,
            ..Default::default()
        };
        // Sequentially driven reference fleet.
        let mut seq = controller(1, 1);
        let seq_handles: Vec<TaskHandle> = (0..n_tasks)
            .map(|i| seq.create_task(&format!("task-{i}"), toy_space(), opts.clone()))
            .collect();
        let mut seq_traces: Vec<Vec<Configuration>> = vec![Vec::new(); n_tasks];
        for _ in 0..budget {
            for (t, h) in seq_handles.iter().enumerate() {
                let cfg = seq.request_config(h, &[]).unwrap();
                let (rt, r) = toy_eval(&cfg);
                seq.report_result(h, cfg.clone(), rt, r, &[], None).unwrap();
                seq_traces[t].push(cfg);
            }
        }
        // Wave-driven fleet, sharded and parallel.
        let mut fleet = controller(4, 4);
        let handles: Vec<TaskHandle> = (0..n_tasks)
            .map(|i| fleet.create_task(&format!("task-{i}"), toy_space(), opts.clone()))
            .collect();
        let mut traces: Vec<Vec<Configuration>> = vec![Vec::new(); n_tasks];
        for _ in 0..budget {
            let requests: Vec<FleetRequest> = handles
                .iter()
                .map(|h| FleetRequest {
                    handle: h,
                    context: &[],
                })
                .collect();
            let configs = fleet.request_configs(&requests);
            let reports: Vec<FleetReport> = configs
                .iter()
                .zip(&handles)
                .map(|(cfg, h)| {
                    let cfg = cfg.as_ref().unwrap().clone();
                    let (rt, r) = toy_eval(&cfg);
                    FleetReport {
                        handle: h,
                        config: cfg,
                        runtime_s: rt,
                        resource: r,
                        context: &[],
                        meta_features: None,
                    }
                })
                .collect();
            for (t, rep) in reports.iter().enumerate() {
                traces[t].push(rep.config.clone());
            }
            for res in fleet.report_results(&reports) {
                res.unwrap();
            }
        }
        assert_eq!(traces, seq_traces);
    }

    /// Run a cold-start fleet: `n_seed` corpus-feeding source tasks driven
    /// to completion, then `n_cold` tasks registered with pre-known
    /// features and driven through batched waves. Returns the cold tasks'
    /// suggestion traces.
    fn cold_start_traces(shards: usize, threads: usize) -> Vec<Vec<Configuration>> {
        let (n_seed, n_cold, budget) = (4, 6, 3);
        let opts = TunerOptions {
            budget,
            ..Default::default()
        };
        let mut fleet = controller(shards, threads);
        fleet.set_corpus(otune_meta::TuningCorpus::in_memory());
        for s in 0..n_seed {
            let h = fleet.create_task(&format!("seed-{s}"), toy_space(), opts.clone());
            for i in 0..budget {
                let cfg = fleet.request_config(&h, &[]).unwrap();
                let (rt, r) = toy_eval(&cfg);
                let f = if i == 0 {
                    Some(vec![s as f64, 2.0 * s as f64])
                } else {
                    None
                };
                fleet.report_result(&h, cfg, rt, r, &[], f).unwrap();
            }
        }
        let handles: Vec<TaskHandle> = (0..n_cold)
            .map(|c| {
                fleet.create_task_with_features(
                    &format!("cold-{c}"),
                    toy_space(),
                    opts.clone(),
                    vec![0.3 * c as f64, 0.6 * c as f64],
                )
            })
            .collect();
        let mut traces: Vec<Vec<Configuration>> = vec![Vec::new(); n_cold];
        for _ in 0..budget {
            let requests: Vec<FleetRequest> = handles
                .iter()
                .map(|h| FleetRequest {
                    handle: h,
                    context: &[],
                })
                .collect();
            let configs = fleet.request_configs(&requests);
            let reports: Vec<FleetReport> = configs
                .iter()
                .zip(&handles)
                .map(|(cfg, h)| {
                    let cfg = cfg.as_ref().unwrap().clone();
                    let (rt, r) = toy_eval(&cfg);
                    FleetReport {
                        handle: h,
                        config: cfg,
                        runtime_s: rt,
                        resource: r,
                        context: &[],
                        meta_features: None,
                    }
                })
                .collect();
            for (t, rep) in reports.iter().enumerate() {
                traces[t].push(rep.config.clone());
            }
            for res in fleet.report_results(&reports) {
                res.unwrap();
            }
        }
        traces
    }

    #[test]
    fn retrieval_bootstrap_is_identical_at_any_shard_and_thread_count() {
        // k-NN retrieval reads a corpus built by interleaved shard workers;
        // the bootstrap (and every downstream suggestion) must not depend
        // on OTUNE_SHARDS / OTUNE_THREADS.
        let reference = cold_start_traces(1, 1);
        for (shards, threads) in [(2, 2), (4, 4), (8, 3)] {
            assert_eq!(
                cold_start_traces(shards, threads),
                reference,
                "trace diverged at shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn wave_results_come_back_in_input_order() {
        let mut fleet = controller(4, 2);
        let ha = fleet.create_task(
            "a",
            toy_space(),
            TunerOptions {
                budget: 3,
                ..Default::default()
            },
        );
        let bogus = TaskHandle("ghost".into());
        let requests = vec![
            FleetRequest {
                handle: &bogus,
                context: &[],
            },
            FleetRequest {
                handle: &ha,
                context: &[],
            },
        ];
        let out = fleet.request_configs(&requests);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Err(ControllerError::UnknownTask));
        assert!(out[1].is_ok());
    }

    #[test]
    fn duplicate_task_in_one_wave_hits_protocol_error() {
        // Two requests for the same task in one wave: the second must fail
        // deterministically (a suggestion is already pending), exactly as
        // it would when driven sequentially.
        let mut fleet = controller(2, 2);
        let h = fleet.create_task(
            "dup",
            toy_space(),
            TunerOptions {
                budget: 3,
                ..Default::default()
            },
        );
        let requests = vec![
            FleetRequest {
                handle: &h,
                context: &[],
            },
            FleetRequest {
                handle: &h,
                context: &[],
            },
        ];
        let out = fleet.request_configs(&requests);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(ControllerError::Tuner(_))));
    }

    #[test]
    fn fleet_telemetry_counts_waves() {
        let (tm, _sink) = otune_telemetry::Telemetry::ring(64);
        let mut fleet = controller(2, 1);
        fleet.set_telemetry(tm);
        let h = fleet.create_task(
            "t",
            toy_space(),
            TunerOptions {
                budget: 2,
                ..Default::default()
            },
        );
        let requests = vec![FleetRequest {
            handle: &h,
            context: &[],
        }];
        let cfg = fleet.request_configs(&requests)[0].clone().unwrap();
        let (rt, r) = toy_eval(&cfg);
        let reports = vec![FleetReport {
            handle: &h,
            config: cfg,
            runtime_s: rt,
            resource: r,
            context: &[],
            meta_features: None,
        }];
        fleet.report_results(&reports)[0].clone().unwrap();
        let snap = fleet.telemetry().snapshot().unwrap();
        assert_eq!(snap.counters[metric::FLEET_WAVES], 2);
        assert_eq!(snap.counters[metric::FLEET_REQUESTS], 1);
        assert_eq!(snap.counters[metric::FLEET_REPORTS], 1);
        assert_eq!(snap.gauges[metric::FLEET_SHARDS], 2.0);
        assert_eq!(snap.gauges[metric::FLEET_TASKS], 1.0);
        assert_eq!(snap.histograms[metric::FLEET_WAVE_S].count, 2);
    }
}
