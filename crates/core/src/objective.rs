//! The generalized tuning formulation (Eq. 1).

use serde::{Deserialize, Serialize};

/// The generalized objective `f(x) = T(x)^β · R(x)^{1−β}`, `β ∈ [0, 1]`.
///
/// * `β = 1` — minimize runtime (the "fastest configuration").
/// * `β = 0` — minimize the resource amount.
/// * `β = 0.5` — minimize execution cost (√(T·R); the square root is a
///   monotone transform, so the optimizer is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// The runtime/resource trade-off exponent.
    pub beta: f64,
}

impl Objective {
    /// Construct, validating `β ∈ [0, 1]`.
    pub fn new(beta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta),
            "β must lie in [0, 1], got {beta}"
        );
        Objective { beta }
    }

    /// Pure runtime objective (`β = 1`).
    pub fn runtime() -> Self {
        Objective { beta: 1.0 }
    }

    /// Execution-cost objective (`β = 0.5`), the production default (§6.2).
    pub fn cost() -> Self {
        Objective { beta: 0.5 }
    }

    /// Pure resource objective (`β = 0`).
    pub fn resource() -> Self {
        Objective { beta: 0.0 }
    }

    /// Evaluate `f` from an observed runtime and the analytic resource.
    pub fn eval(&self, runtime_s: f64, resource: f64) -> f64 {
        runtime_s.max(0.0).powf(self.beta) * resource.max(0.0).powf(1.0 - self.beta)
    }
}

impl Default for Objective {
    fn default() -> Self {
        Objective::cost()
    }
}

/// Application requirements from Eq. 1: upper bounds on runtime and
/// resource. `None` disables a bound. The production deployment sets both
/// to twice the manual configuration's metrics (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Constraints {
    /// Maximum tolerated runtime `T_max` in seconds.
    pub t_max: Option<f64>,
    /// Maximum tolerated resource amount `R_max`.
    pub r_max: Option<f64>,
}

impl Constraints {
    /// No constraints.
    pub fn none() -> Self {
        Constraints::default()
    }

    /// Whether `(runtime, resource)` satisfies the constraints.
    pub fn satisfied(&self, runtime_s: f64, resource: f64) -> bool {
        self.t_max.is_none_or(|t| runtime_s <= t) && self.r_max.is_none_or(|r| resource <= r)
    }
}

/// The analytic resource function `R(x)` for a configuration space
/// (§4.3: white-box, read directly off resource parameters).
///
/// When the space contains the well-known Spark resource parameters the
/// returned closure computes `#vcores + 0.5·#mem_GB` over executors and the
/// driver; otherwise it falls back to a constant `1.0`, which reduces every
/// objective to runtime-only tuning — correct for non-Spark toy spaces.
pub fn resource_fn_for(
    space: &otune_space::ConfigSpace,
) -> std::sync::Arc<dyn Fn(&otune_space::Configuration) -> f64 + Send + Sync> {
    use otune_space::SparkParam as P;
    let idx: Option<[usize; 5]> = (|| {
        Some([
            space.index_of(P::ExecutorInstances.name()).ok()?,
            space.index_of(P::ExecutorCores.name()).ok()?,
            space.index_of(P::ExecutorMemory.name()).ok()?,
            space.index_of(P::DriverCores.name()).ok()?,
            space.index_of(P::DriverMemory.name()).ok()?,
        ])
    })();
    match idx {
        Some([inst, cores, mem, dc, dm]) => std::sync::Arc::new(move |c| {
            let instances = c[inst].as_f64();
            let vcores = instances * c[cores].as_f64() + c[dc].as_f64();
            let mem_gb = instances * c[mem].as_f64() + c[dm].as_f64();
            vcores + 0.5 * mem_gb
        }),
        None => std::sync::Arc::new(|_| 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_fn_matches_simulator() {
        use otune_space::{spark_space, ClusterScale};
        let space = spark_space(ClusterScale::hibench());
        let f = resource_fn_for(&space);
        let c = space.default_configuration();
        // default: 8 inst × 2 cores + 1 driver core = 17 vcores;
        // 8 × 4 GB + 2 GB driver = 34 GB → R = 17 + 17 = 34.
        assert!((f(&c) - 34.0).abs() < 1e-9, "{}", f(&c));
    }

    #[test]
    fn resource_fn_falls_back_for_toy_spaces() {
        use otune_space::{ConfigSpace, Parameter};
        let space = ConfigSpace::new(vec![Parameter::int("x", 0, 9, 1)]);
        let f = resource_fn_for(&space);
        assert_eq!(f(&space.default_configuration()), 1.0);
    }

    #[test]
    fn endpoints_match_paper_semantics() {
        assert_eq!(Objective::runtime().eval(120.0, 40.0), 120.0);
        assert_eq!(Objective::resource().eval(120.0, 40.0), 40.0);
        let cost = Objective::cost().eval(120.0, 40.0);
        assert!((cost - (120.0f64 * 40.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn intermediate_beta_weights_runtime() {
        // β = 0.7 "pays more attention to the decrease in runtime".
        let o = Objective::new(0.7);
        let base = o.eval(100.0, 100.0);
        let faster = o.eval(50.0, 100.0);
        let cheaper = o.eval(100.0, 50.0);
        assert!(faster < cheaper, "{faster} vs {cheaper}");
        assert!(faster < base && cheaper < base);
    }

    #[test]
    #[should_panic(expected = "β must lie in")]
    fn beta_out_of_range_panics() {
        let _ = Objective::new(1.2);
    }

    #[test]
    fn constraints_checks() {
        let c = Constraints {
            t_max: Some(100.0),
            r_max: Some(50.0),
        };
        assert!(c.satisfied(100.0, 50.0));
        assert!(!c.satisfied(100.1, 50.0));
        assert!(!c.satisfied(100.0, 50.1));
        assert!(Constraints::none().satisfied(1e12, 1e12));
    }
}
