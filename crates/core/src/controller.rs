//! The OnlineTune controller (Figure 1): the multi-task tuning service.
//!
//! The controller orchestrates the request/report workflow against the
//! data platform, owns the shared [`DataRepository`], and wires the
//! meta-knowledge learner into new tasks: when a task registers its first
//! event-log meta-features, the controller injects warm-start
//! configurations from the top-3 most similar previous tasks (§5.2).
//!
//! At fleet scale the task map is hashed into [`FleetOptions::shards`]
//! deterministic shards so batched waves (see [`crate::fleet`]) can fan
//! per-task work across a worker pool, one shard per worker, without any
//! cross-task locking. Cross-task meta-knowledge — base-task surrogates and
//! pairwise distances — lives in a fleet-wide [`SharedMetaStore`], and the
//! similarity model `M_reg` is refit on a schedule (every
//! [`FleetOptions::n_refit`] reports, or when the eligible source-task set
//! changes) instead of per report.

use crate::fleet::{FleetOptions, FleetReport};
use crate::repository::DataRepository;
use crate::tuner::{OnlineTuner, TunerError, TunerOptions};
use otune_bo::Observation;
use otune_meta::{
    warm_start_configs_with, CorpusRecord, SharedMetaStore, SimilarityLearner, TuningCorpus,
    DEFAULT_MAX_DISTANCE, DEFAULT_RETRIEVAL_K,
};
use otune_space::{ConfigSpace, Configuration};
use otune_telemetry::{metric, EventKind, Telemetry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Handle identifying a registered task. Clones are reference-counted, so
/// batched fleet waves never copy the underlying id string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskHandle(pub Arc<str>);

impl TaskHandle {
    /// The task id.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Still exploring configurations.
    Tuning,
    /// Budget or stopping criterion reached; best config is served.
    Stopped,
}

pub(crate) struct TaskEntry {
    pub(crate) tuner: OnlineTuner,
    /// Whether warm-start injection was already attempted.
    pub(crate) warm_injected: bool,
    /// Task-labeled telemetry handle.
    pub(crate) telemetry: Telemetry,
}

/// Scheduled similarity-model state: the cached `M_reg` plus the staleness
/// bookkeeping that decides when it is retrained.
#[derive(Default)]
pub(crate) struct SimilarityState {
    pub(crate) model: Option<SimilarityLearner>,
    /// Source-task ids the model was trained on (repository order).
    trained_on: Vec<String>,
    /// Reports absorbed since the last (re)fit.
    pub(crate) reports_since_refit: usize,
}

/// The multi-task online tuning service.
pub struct OnlineTuneController {
    pub(crate) repository: Arc<DataRepository>,
    /// Task map hashed into `fleet.shards` disjoint shards. Single-task
    /// calls go through `Mutex::get_mut` (no locking); batched waves lock
    /// each shard from exactly one pool worker.
    pub(crate) shards: Vec<Mutex<HashMap<TaskHandle, TaskEntry>>>,
    pub(crate) fleet: FleetOptions,
    /// Fleet-wide read-only meta-knowledge, shared by every task's tuner.
    pub(crate) shared_meta: Arc<SharedMetaStore>,
    pub(crate) sim: SimilarityState,
    /// How many similar source tasks to transfer from.
    n_warm_sources: usize,
    /// Samples per Kendall-τ label when training the similarity model.
    n_similarity_samples: usize,
    /// Root telemetry handle; tasks get labeled clones of it.
    pub(crate) telemetry: Telemetry,
}

/// FNV-1a over the task id: stable across processes, so a task always maps
/// to the same shard regardless of registration order or platform.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl OnlineTuneController {
    /// A controller with a fresh repository and fleet options from the
    /// environment (`OTUNE_SHARDS`, `OTUNE_THREADS`).
    pub fn new() -> Self {
        Self::with_repository(Arc::new(DataRepository::new()))
    }

    /// A controller over an existing (possibly shared) repository.
    pub fn with_repository(repository: Arc<DataRepository>) -> Self {
        Self::with_options(repository, FleetOptions::from_env())
    }

    /// A controller with explicit fleet options (shard count, refit
    /// schedule, wave pool).
    pub fn with_options(repository: Arc<DataRepository>, fleet: FleetOptions) -> Self {
        let n_shards = fleet.shards.max(1);
        OnlineTuneController {
            repository,
            shards: (0..n_shards).map(|_| Mutex::new(HashMap::new())).collect(),
            fleet,
            shared_meta: Arc::new(SharedMetaStore::new()),
            sim: SimilarityState::default(),
            n_warm_sources: 3,
            n_similarity_samples: 50,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; tasks created afterwards emit their
    /// events through task-labeled clones of it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        telemetry.gauge(metric::FLEET_SHARDS, self.shards.len() as f64);
        self.telemetry = telemetry;
    }

    /// The controller's telemetry handle (for snapshots and flushing).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The shared repository.
    pub fn repository(&self) -> &Arc<DataRepository> {
        &self.repository
    }

    /// The fleet-wide shared meta-knowledge store.
    pub fn shared_meta(&self) -> &Arc<SharedMetaStore> {
        &self.shared_meta
    }

    /// The fleet options this controller runs under.
    pub fn fleet_options(&self) -> &FleetOptions {
        &self.fleet
    }

    /// Attach a tuning corpus: every completed observation reported to the
    /// controller is appended to it, and
    /// [`OnlineTuneController::create_task_with_features`] retrieves its
    /// zero-execution bootstrap configurations from it.
    pub fn set_corpus(&self, corpus: TuningCorpus) {
        self.telemetry
            .gauge(metric::CORPUS_RECORDS, corpus.len() as f64);
        self.shared_meta.set_corpus(corpus);
    }

    /// The shard index a handle hashes to.
    pub(crate) fn shard_of(&self, handle: &TaskHandle) -> usize {
        (fnv1a(handle.as_str()) % self.shards.len() as u64) as usize
    }

    /// Lock-free (via `&mut`) access to a task's entry.
    pub(crate) fn entry_mut(&mut self, handle: &TaskHandle) -> Option<&mut TaskEntry> {
        let idx = self.shard_of(handle);
        unpoison(self.shards[idx].get_mut()).get_mut(handle)
    }

    /// Lock a shard (batched waves: exactly one worker per shard).
    pub(crate) fn lock_shard(&self, idx: usize) -> MutexGuard<'_, HashMap<TaskHandle, TaskEntry>> {
        unpoison(self.shards[idx].lock())
    }

    /// Register a tuning task. Returns its handle.
    pub fn create_task(
        &mut self,
        task_id: &str,
        space: ConfigSpace,
        options: TunerOptions,
    ) -> TaskHandle {
        let handle = TaskHandle(Arc::from(task_id));
        let telemetry = self.telemetry.for_task(task_id);
        telemetry.emit(
            0,
            EventKind::TaskRegistered {
                n_params: space.len(),
            },
        );
        let mut tuner = OnlineTuner::new(space, options);
        tuner.set_telemetry(telemetry.clone());
        tuner.set_shared_meta(Arc::clone(&self.shared_meta));
        let idx = self.shard_of(&handle);
        unpoison(self.shards[idx].get_mut()).insert(
            handle.clone(),
            TaskEntry {
                tuner,
                warm_injected: false,
                telemetry,
            },
        );
        self.telemetry
            .gauge(metric::FLEET_TASKS, self.n_tasks() as f64);
        handle
    }

    /// Register a tuning task whose meta-features are already known from a
    /// pre-existing run's event log (the manual-default calibration run),
    /// enabling a **zero-execution cold start**: before any tuned run, the
    /// attached corpus is queried by k-NN over the standardized features
    /// and the retrieved configurations replace the leading burn-in
    /// suggestions. Without a corpus (or when no neighbor clears the
    /// similarity threshold) this is exactly
    /// [`OnlineTuneController::create_task`].
    pub fn create_task_with_features(
        &mut self,
        task_id: &str,
        space: ConfigSpace,
        mut options: TunerOptions,
        meta_features: Vec<f64>,
    ) -> TaskHandle {
        let telemetry = self.telemetry.for_task(task_id);
        options.retrieval_configs = self.shared_meta.retrieval_bootstrap(
            &space,
            &meta_features,
            DEFAULT_RETRIEVAL_K,
            DEFAULT_MAX_DISTANCE,
            &telemetry,
        );
        self.repository.set_meta_features(task_id, meta_features);
        self.create_task(task_id, space, options)
    }

    /// Re-register a task from a [`crate::TunerSnapshot`]: the tuner is
    /// rebuilt via [`OnlineTuner::resume`] (replaying its suggestion trace
    /// and verifying bitwise identity), attached to the controller's
    /// telemetry and shared meta store, and inserted under its shard. Used
    /// by the job engine to restore campaign state from a checkpoint.
    pub fn restore_task(
        &mut self,
        task_id: &str,
        space: ConfigSpace,
        options: TunerOptions,
        snap: &crate::snapshot::TunerSnapshot,
    ) -> Result<TaskHandle, crate::snapshot::ResumeError> {
        let handle = TaskHandle(Arc::from(task_id));
        let telemetry = self.telemetry.for_task(task_id);
        let mut tuner = OnlineTuner::resume(space, options, snap, telemetry.clone())?;
        tuner.set_shared_meta(Arc::clone(&self.shared_meta));
        let idx = self.shard_of(&handle);
        unpoison(self.shards[idx].get_mut()).insert(
            handle.clone(),
            TaskEntry {
                tuner,
                warm_injected: false,
                telemetry,
            },
        );
        self.telemetry
            .gauge(metric::FLEET_TASKS, self.n_tasks() as f64);
        Ok(handle)
    }

    /// Step 2 (Figure 1) for a **failed** execution (OOM / timeout kill):
    /// the run is recorded as a censored observation via
    /// [`OnlineTuner::observe_failed`] and mirrored into the repository, so
    /// the safe-region model learns from the failure without treating the
    /// partial runtime as a real measurement.
    pub fn report_failed_result(
        &mut self,
        handle: &TaskHandle,
        config: Configuration,
        partial_runtime_s: f64,
        resource: f64,
        context: &[f64],
    ) -> Result<(), ControllerError> {
        let repository = Arc::clone(&self.repository);
        let entry = self.entry_mut(handle).ok_or(ControllerError::UnknownTask)?;
        entry
            .tuner
            .observe_failed(config.clone(), partial_runtime_s, resource, context)
            .map_err(ControllerError::Tuner)?;
        if let Some(obs) = entry.tuner.history().last() {
            if obs.config == config {
                repository.record_observation(handle.as_str(), Observation::clone(obs));
            }
        }
        self.sim.reports_since_refit += 1;
        Ok(())
    }

    /// Number of registered tasks.
    pub fn n_tasks(&self) -> usize {
        self.shards.iter().map(|s| unpoison(s.lock()).len()).sum()
    }

    /// A task's lifecycle state.
    pub fn state(&self, handle: &TaskHandle) -> Result<TaskState, ControllerError> {
        self.with_entry(handle, |e| {
            if e.tuner.is_stopped() {
                TaskState::Stopped
            } else {
                TaskState::Tuning
            }
        })
    }

    /// Step 1 (Figure 1): the data platform requests a configuration for
    /// the next periodic execution.
    pub fn request_config(
        &mut self,
        handle: &TaskHandle,
        context: &[f64],
    ) -> Result<Configuration, ControllerError> {
        let entry = self.entry_mut(handle).ok_or(ControllerError::UnknownTask)?;
        entry.tuner.suggest(context).map_err(ControllerError::Tuner)
    }

    /// Step 2 (Figure 1): the data platform reports the execution result.
    /// `meta_features`, when present (extracted from the run's event log),
    /// are stored and — on their first arrival — trigger warm-start
    /// injection from similar tasks.
    pub fn report_result(
        &mut self,
        handle: &TaskHandle,
        config: Configuration,
        runtime_s: f64,
        resource: f64,
        context: &[f64],
        meta_features: Option<Vec<f64>>,
    ) -> Result<(), ControllerError> {
        let report = FleetReport {
            handle,
            config,
            runtime_s,
            resource,
            context,
            meta_features,
        };
        let repository = Arc::clone(&self.repository);
        let shared = Arc::clone(&self.shared_meta);
        let idx = self.shard_of(handle);
        let entry = unpoison(self.shards[idx].get_mut())
            .get_mut(handle)
            .ok_or(ControllerError::UnknownTask)?;
        let inject = Self::absorb_report(&repository, &shared, entry, &report)?;
        self.sim.reports_since_refit += 1;
        if let Some(features) = inject {
            self.maybe_inject(handle, &features);
        }
        Ok(())
    }

    /// The per-task half of a result report: feed the tuner, emit
    /// telemetry, and mirror into the repository. Returns the meta-features
    /// when this report should trigger warm-start injection (handled by the
    /// caller in a deterministic sequential phase).
    pub(crate) fn absorb_report(
        repository: &DataRepository,
        shared: &SharedMetaStore,
        entry: &mut TaskEntry,
        report: &FleetReport<'_>,
    ) -> Result<Option<Vec<f64>>, ControllerError> {
        entry
            .tuner
            .observe(
                report.config.clone(),
                report.runtime_s,
                report.resource,
                report.context,
            )
            .map_err(ControllerError::Tuner)?;
        let opts = entry.tuner.options();
        let constraint_violated = opts.t_max.is_some_and(|t| report.runtime_s > t)
            || opts.r_max.is_some_and(|r| report.resource > r);
        let objective = entry
            .tuner
            .objective()
            .eval(report.runtime_s, report.resource);
        entry.telemetry.emit(
            entry.tuner.history().len() as u64,
            EventKind::ObservationReported {
                runtime: report.runtime_s,
                resource: report.resource,
                objective,
                constraint_violated,
            },
        );
        let mut recorded = false;
        if let Some(obs) = entry.tuner.history().last() {
            // Mirror into the repository (post-stop runs are not recorded
            // by the tuner, so guard on matching config).
            if obs.config == report.config {
                repository.record_observation(report.handle.as_str(), Observation::clone(obs));
                recorded = true;
            }
        }
        if recorded && shared.has_corpus() {
            let features = report
                .meta_features
                .clone()
                .or_else(|| repository.meta_features(report.handle.as_str()));
            if let Some(meta_features) = features {
                // Best-effort: an I/O failure loses one corpus record, it
                // never fails the tuning step itself.
                let _ = shared.record_outcome(
                    CorpusRecord {
                        task_id: report.handle.as_str().to_string(),
                        meta_features,
                        config: report.config.clone(),
                        objective,
                        runtime: report.runtime_s,
                        resource: report.resource,
                        failed: constraint_violated,
                    },
                    &entry.telemetry,
                );
            }
        }
        if let Some(features) = &report.meta_features {
            repository.set_meta_features(report.handle.as_str(), features.clone());
            if !entry.warm_injected {
                entry.warm_injected = true;
                return Ok(Some(features.clone()));
            }
        }
        Ok(None)
    }

    /// The best configuration found for a task so far (`None` before the
    /// first observation).
    pub fn best_config(
        &self,
        handle: &TaskHandle,
    ) -> Result<Option<Configuration>, ControllerError> {
        self.with_entry(handle, |e| e.tuner.best().map(|o| o.config.clone()))
    }

    /// Direct access to a task's tuner (diagnostics and tests).
    pub fn tuner(&mut self, handle: &TaskHandle) -> Result<&OnlineTuner, ControllerError> {
        self.entry_mut(handle)
            .map(|e| &e.tuner)
            .ok_or(ControllerError::UnknownTask)
    }

    fn with_entry<R>(
        &self,
        handle: &TaskHandle,
        f: impl FnOnce(&TaskEntry) -> R,
    ) -> Result<R, ControllerError> {
        let idx = self.shard_of(handle);
        unpoison(self.shards[idx].lock())
            .get(handle)
            .map(f)
            .ok_or(ControllerError::UnknownTask)
    }

    /// Retrain the similarity model if it is stale: missing, the eligible
    /// source-task set changed, or `n_refit` reports have accumulated since
    /// the last fit. Base surrogates and pairwise labels come from the
    /// shared meta store, so refits only pay for new tasks and new pairs.
    pub(crate) fn refresh_similarity(&mut self, space: &ConfigSpace) {
        let sources = self.repository.source_tasks("");
        let ids: Vec<String> = sources.iter().map(|t| t.task_id.clone()).collect();
        let fresh = self.sim.model.is_some()
            && ids == self.sim.trained_on
            && self.sim.reports_since_refit < self.fleet.n_refit;
        if fresh {
            self.telemetry.incr(metric::SIMILARITY_REUSES);
            return;
        }
        self.telemetry.incr(metric::SIMILARITY_REFITS);
        self.sim.model = SimilarityLearner::train_with_store(
            space,
            &sources,
            self.n_similarity_samples,
            0,
            &self.shared_meta,
            &self.telemetry,
        );
        self.sim.trained_on = ids;
        self.sim.reports_since_refit = 0;
    }

    /// Warm-start injection for a task that just reported its first
    /// meta-features: rank similar sources with the scheduled similarity
    /// model and rebuild the tuner with transferred knowledge.
    pub(crate) fn maybe_inject(&mut self, handle: &TaskHandle, features: &[f64]) {
        let sources = self.repository.source_tasks(handle.as_str());
        if sources.len() < 2 {
            return;
        }
        let Some(space) = self.entry_mut(handle).map(|e| e.tuner.space().clone()) else {
            return;
        };
        self.refresh_similarity(&space);
        let shared_meta = Arc::clone(&self.shared_meta);
        let n_sources = self.n_warm_sources;
        let Some(model) = self.sim.model.as_ref() else {
            return;
        };
        let idx = self.shard_of(handle);
        let Some(entry) = unpoison(self.shards[idx].get_mut()).get_mut(handle) else {
            return;
        };
        let warm = warm_start_configs_with(model, features, &sources, n_sources, &entry.telemetry);
        if warm.is_empty() {
            return;
        }
        entry.telemetry.emit(
            entry.tuner.history().len() as u64,
            EventKind::WarmStartInjected {
                n_configs: warm.len(),
                n_sources: n_sources.min(sources.len()),
            },
        );
        // Rebuild the tuner with warm starts and the sources as ensemble
        // bases, preserving already-collected history.
        let mut opts = TunerOptionsSnapshot::capture(&entry.tuner);
        opts.options.warm_configs = warm;
        opts.options.base_tasks = sources;
        let mut tuner = OnlineTuner::new(space, opts.options);
        tuner.set_telemetry(entry.telemetry.clone());
        tuner.set_shared_meta(shared_meta);
        for o in opts.history {
            tuner.seed_observation(o.config, o.runtime, o.resource, &o.context);
        }
        entry.tuner = tuner;
    }
}

impl Default for OnlineTuneController {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot used when a tuner is rebuilt with transferred knowledge.
struct TunerOptionsSnapshot {
    options: TunerOptions,
    history: Vec<Observation>,
}

impl TunerOptionsSnapshot {
    fn capture(tuner: &OnlineTuner) -> Self {
        TunerOptionsSnapshot {
            options: tuner.options().clone(),
            history: tuner.history().to_vec(),
        }
    }
}

/// Controller errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerError {
    /// The handle does not name a registered task.
    UnknownTask,
    /// Underlying tuner protocol error.
    Tuner(TunerError),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnknownTask => write!(f, "unknown task"),
            ControllerError::Tuner(e) => write!(f, "tuner error: {e}"),
        }
    }
}

impl std::error::Error for ControllerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{ConfigSpace, Parameter};

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("n", 1, 50, 10),
            Parameter::int("m", 1, 32, 8),
        ])
    }

    fn toy_eval(c: &Configuration) -> (f64, f64) {
        let n = c[0].as_int().unwrap() as f64;
        let m = c[1].as_int().unwrap() as f64;
        (400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
    }

    #[test]
    fn request_report_cycle() {
        let mut ctl = OnlineTuneController::new();
        let h = ctl.create_task(
            "t1",
            toy_space(),
            TunerOptions {
                budget: 5,
                ..Default::default()
            },
        );
        assert_eq!(ctl.n_tasks(), 1);
        assert_eq!(ctl.state(&h), Ok(TaskState::Tuning));
        for _ in 0..5 {
            let cfg = ctl.request_config(&h, &[]).unwrap();
            let (rt, r) = toy_eval(&cfg);
            ctl.report_result(&h, cfg, rt, r, &[], None).unwrap();
        }
        // Budget spent: next request flips to Stopped and serves the best.
        let best_served = ctl.request_config(&h, &[]).unwrap();
        assert_eq!(ctl.state(&h), Ok(TaskState::Stopped));
        assert_eq!(Some(best_served), ctl.best_config(&h).unwrap());
        assert_eq!(ctl.repository().task("t1").unwrap().observations.len(), 5);
    }

    #[test]
    fn unknown_task_rejected() {
        let mut ctl = OnlineTuneController::new();
        let bogus = TaskHandle("nope".into());
        assert_eq!(
            ctl.request_config(&bogus, &[]).unwrap_err(),
            ControllerError::UnknownTask
        );
        assert_eq!(ctl.state(&bogus), Err(ControllerError::UnknownTask));
        assert_eq!(ctl.best_config(&bogus), Err(ControllerError::UnknownTask));
        assert!(matches!(
            ctl.tuner(&bogus),
            Err(ControllerError::UnknownTask)
        ));
    }

    #[test]
    fn meta_features_recorded_and_warm_start_attempted() {
        let mut ctl = OnlineTuneController::new();
        // Two completed source tasks in the repository.
        for tid in ["src-a", "src-b"] {
            let h = ctl.create_task(
                tid,
                toy_space(),
                TunerOptions {
                    budget: 8,
                    ..Default::default()
                },
            );
            for i in 0..8 {
                let cfg = ctl.request_config(&h, &[]).unwrap();
                let (rt, r) = toy_eval(&cfg);
                let features = if i == 0 {
                    Some(vec![1.0, 2.0, 3.0])
                } else {
                    None
                };
                ctl.report_result(&h, cfg, rt, r, &[], features).unwrap();
            }
        }
        // A new task reporting meta-features triggers the transfer path.
        let h = ctl.create_task(
            "new",
            toy_space(),
            TunerOptions {
                budget: 8,
                ..Default::default()
            },
        );
        let cfg = ctl.request_config(&h, &[]).unwrap();
        let (rt, r) = toy_eval(&cfg);
        ctl.report_result(&h, cfg, rt, r, &[], Some(vec![1.0, 2.0, 3.1]))
            .unwrap();
        // Tuning continues normally afterwards.
        for _ in 0..3 {
            let cfg = ctl.request_config(&h, &[]).unwrap();
            let (rt, r) = toy_eval(&cfg);
            ctl.report_result(&h, cfg, rt, r, &[], None).unwrap();
        }
        assert!(ctl.best_config(&h).unwrap().is_some());
        let rec = ctl.repository().task("new").unwrap();
        assert_eq!(rec.meta_features, vec![1.0, 2.0, 3.1]);
    }

    #[test]
    fn multiple_tasks_are_independent() {
        let mut ctl = OnlineTuneController::new();
        let h1 = ctl.create_task(
            "a",
            toy_space(),
            TunerOptions {
                budget: 3,
                ..Default::default()
            },
        );
        let h2 = ctl.create_task(
            "b",
            toy_space(),
            TunerOptions {
                budget: 3,
                ..Default::default()
            },
        );
        let c1 = ctl.request_config(&h1, &[]).unwrap();
        let c2 = ctl.request_config(&h2, &[]).unwrap();
        let (rt1, r1) = toy_eval(&c1);
        let (rt2, r2) = toy_eval(&c2);
        ctl.report_result(&h1, c1, rt1, r1, &[], None).unwrap();
        ctl.report_result(&h2, c2, rt2, r2, &[], None).unwrap();
        assert_eq!(ctl.repository().task("a").unwrap().observations.len(), 1);
        assert_eq!(ctl.repository().task("b").unwrap().observations.len(), 1);
    }

    /// Drive `n` budget-4 iterations of a task, reporting `features` with
    /// the first result, and return the suggestion trace.
    fn drive(
        ctl: &mut OnlineTuneController,
        h: &TaskHandle,
        n: usize,
        features: Option<Vec<f64>>,
    ) -> Vec<Configuration> {
        let mut trace = Vec::new();
        for i in 0..n {
            let cfg = ctl.request_config(h, &[]).unwrap();
            let (rt, r) = toy_eval(&cfg);
            let f = if i == 0 { features.clone() } else { None };
            ctl.report_result(h, cfg.clone(), rt, r, &[], f).unwrap();
            trace.push(cfg);
        }
        trace
    }

    #[test]
    fn corpus_records_reports_and_bootstraps_cold_tasks() {
        let (tm, _sink) = otune_telemetry::Telemetry::ring(256);
        let mut ctl = OnlineTuneController::new();
        ctl.set_telemetry(tm);
        ctl.set_corpus(otune_meta::TuningCorpus::in_memory());
        let opts = TunerOptions {
            budget: 4,
            ..Default::default()
        };
        // Two source tasks feed the corpus: the first report carries the
        // meta-features, later ones find them in the repository.
        for (tid, f) in [("src-a", 0.0), ("src-b", 4.0)] {
            let h = ctl.create_task(tid, toy_space(), opts.clone());
            drive(&mut ctl, &h, 4, Some(vec![f, f + 1.0]));
        }
        assert_eq!(ctl.shared_meta().corpus_len(), 8);
        // A cold task with pre-known features gets a retrieval bootstrap.
        let h = ctl.create_task_with_features("cold", toy_space(), opts, vec![0.1, 1.1]);
        let first = ctl.request_config(&h, &[]).unwrap();
        let snap = ctl.telemetry().snapshot().unwrap();
        assert_eq!(snap.counters[metric::RETRIEVAL_HITS], 1);
        assert_eq!(snap.gauges[metric::CORPUS_RECORDS], 8.0);
        let (rt, r) = toy_eval(&first);
        ctl.report_result(&h, first, rt, r, &[], None).unwrap();
        // Cold-task reports are appended too (features known up front).
        assert_eq!(ctl.shared_meta().corpus_len(), 9);
    }

    #[test]
    fn attached_corpus_alone_never_changes_suggestions() {
        // With retrieval unused (plain create_task), a controller with a
        // corpus attached must suggest exactly what a corpus-free
        // controller does: recording outcomes is write-only.
        let opts = TunerOptions {
            budget: 6,
            ..Default::default()
        };
        let mut plain = OnlineTuneController::new();
        let hp = plain.create_task("t", toy_space(), opts.clone());
        let reference = drive(&mut plain, &hp, 6, Some(vec![1.0, 2.0]));

        let mut recording = OnlineTuneController::new();
        recording.set_corpus(otune_meta::TuningCorpus::in_memory());
        let hr = recording.create_task("t", toy_space(), opts);
        let observed = drive(&mut recording, &hr, 6, Some(vec![1.0, 2.0]));
        assert_eq!(observed, reference);
        assert_eq!(recording.shared_meta().corpus_len(), 6);
        assert_eq!(plain.shared_meta().corpus_len(), 0);
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        let repo = Arc::new(DataRepository::new());
        let mut ctl = OnlineTuneController::with_options(
            repo,
            FleetOptions {
                shards: 4,
                ..FleetOptions::default()
            },
        );
        let handles: Vec<TaskHandle> = (0..16)
            .map(|i| {
                ctl.create_task(
                    &format!("task-{i}"),
                    toy_space(),
                    TunerOptions {
                        budget: 2,
                        ..Default::default()
                    },
                )
            })
            .collect();
        assert_eq!(ctl.n_tasks(), 16);
        // Same id, same shard — and every task is findable.
        for h in &handles {
            let a = ctl.shard_of(h);
            let b = ctl.shard_of(&TaskHandle(Arc::from(h.as_str())));
            assert_eq!(a, b);
            assert!(ctl.state(h).is_ok());
        }
        // Shards partition the fleet.
        let total: usize = (0..4).map(|i| ctl.lock_shard(i).len()).sum();
        assert_eq!(total, 16);
    }
}
