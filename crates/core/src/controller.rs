//! The OnlineTune controller (Figure 1): the multi-task tuning service.
//!
//! The controller orchestrates the request/report workflow against the
//! data platform, owns the shared [`DataRepository`], and wires the
//! meta-knowledge learner into new tasks: when a task registers its first
//! event-log meta-features, the controller trains the similarity model on
//! the repository and injects warm-start configurations from the top-3
//! most similar previous tasks (§5.2).

use crate::repository::DataRepository;
use crate::tuner::{OnlineTuner, TunerError, TunerOptions};
use otune_bo::Observation;
use otune_meta::{warm_start_configs_with, SimilarityLearner};
use otune_space::{ConfigSpace, Configuration};
use otune_telemetry::{EventKind, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle identifying a registered task.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskHandle(pub String);

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Still exploring configurations.
    Tuning,
    /// Budget or stopping criterion reached; best config is served.
    Stopped,
}

struct TaskEntry {
    tuner: OnlineTuner,
    /// Whether warm-start injection was already attempted.
    warm_injected: bool,
    /// Task-labeled telemetry handle.
    telemetry: Telemetry,
}

/// The multi-task online tuning service.
pub struct OnlineTuneController {
    repository: Arc<DataRepository>,
    tasks: HashMap<TaskHandle, TaskEntry>,
    /// How many similar source tasks to transfer from.
    n_warm_sources: usize,
    /// Samples per Kendall-τ label when training the similarity model.
    n_similarity_samples: usize,
    /// Root telemetry handle; tasks get labeled clones of it.
    telemetry: Telemetry,
}

impl OnlineTuneController {
    /// A controller with a fresh repository.
    pub fn new() -> Self {
        Self::with_repository(Arc::new(DataRepository::new()))
    }

    /// A controller over an existing (possibly shared) repository.
    pub fn with_repository(repository: Arc<DataRepository>) -> Self {
        OnlineTuneController {
            repository,
            tasks: HashMap::new(),
            n_warm_sources: 3,
            n_similarity_samples: 50,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; tasks created afterwards emit their
    /// events through task-labeled clones of it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The controller's telemetry handle (for snapshots and flushing).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The shared repository.
    pub fn repository(&self) -> &Arc<DataRepository> {
        &self.repository
    }

    /// Register a tuning task. Returns its handle.
    pub fn create_task(
        &mut self,
        task_id: &str,
        space: ConfigSpace,
        options: TunerOptions,
    ) -> TaskHandle {
        let handle = TaskHandle(task_id.to_string());
        let telemetry = self.telemetry.for_task(task_id);
        telemetry.emit(
            0,
            EventKind::TaskRegistered {
                n_params: space.len(),
            },
        );
        let mut tuner = OnlineTuner::new(space, options);
        tuner.set_telemetry(telemetry.clone());
        self.tasks.insert(
            handle.clone(),
            TaskEntry {
                tuner,
                warm_injected: false,
                telemetry,
            },
        );
        handle
    }

    /// Number of registered tasks.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// A task's lifecycle state.
    pub fn state(&self, handle: &TaskHandle) -> Option<TaskState> {
        self.tasks.get(handle).map(|t| {
            if t.tuner.is_stopped() {
                TaskState::Stopped
            } else {
                TaskState::Tuning
            }
        })
    }

    /// Step 1 (Figure 1): the data platform requests a configuration for
    /// the next periodic execution.
    pub fn request_config(
        &mut self,
        handle: &TaskHandle,
        context: &[f64],
    ) -> Result<Configuration, ControllerError> {
        let entry = self
            .tasks
            .get_mut(handle)
            .ok_or(ControllerError::UnknownTask)?;
        entry.tuner.suggest(context).map_err(ControllerError::Tuner)
    }

    /// Step 2 (Figure 1): the data platform reports the execution result.
    /// `meta_features`, when present (extracted from the run's event log),
    /// are stored and — on their first arrival — trigger warm-start
    /// injection from similar tasks.
    pub fn report_result(
        &mut self,
        handle: &TaskHandle,
        config: Configuration,
        runtime_s: f64,
        resource: f64,
        context: &[f64],
        meta_features: Option<Vec<f64>>,
    ) -> Result<(), ControllerError> {
        let entry = self
            .tasks
            .get_mut(handle)
            .ok_or(ControllerError::UnknownTask)?;
        entry
            .tuner
            .observe(config.clone(), runtime_s, resource, context)
            .map_err(ControllerError::Tuner)?;
        let opts = entry.tuner.options();
        let constraint_violated =
            opts.t_max.is_some_and(|t| runtime_s > t) || opts.r_max.is_some_and(|r| resource > r);
        entry.telemetry.emit(
            entry.tuner.history().len() as u64,
            EventKind::ObservationReported {
                runtime: runtime_s,
                resource,
                objective: entry.tuner.objective().eval(runtime_s, resource),
                constraint_violated,
            },
        );
        if let Some(obs) = entry.tuner.history().last() {
            // Mirror into the repository (post-stop runs are not recorded
            // by the tuner, so guard on matching config).
            if obs.config == config {
                self.repository
                    .record_observation(&handle.0, Observation::clone(obs));
            }
        }
        if let Some(features) = meta_features {
            self.repository
                .set_meta_features(&handle.0, features.clone());
            if !entry.warm_injected {
                entry.warm_injected = true;
                Self::inject_warm_start(
                    &self.repository,
                    entry,
                    &handle.0,
                    &features,
                    self.n_warm_sources,
                    self.n_similarity_samples,
                );
            }
        }
        Ok(())
    }

    /// The best configuration found for a task so far.
    pub fn best_config(&self, handle: &TaskHandle) -> Option<Configuration> {
        self.tasks
            .get(handle)
            .and_then(|t| t.tuner.best().map(|o| o.config.clone()))
    }

    /// Direct access to a task's tuner (diagnostics and tests).
    pub fn tuner(&self, handle: &TaskHandle) -> Option<&OnlineTuner> {
        self.tasks.get(handle).map(|t| &t.tuner)
    }

    fn inject_warm_start(
        repository: &DataRepository,
        entry: &mut TaskEntry,
        task_id: &str,
        features: &[f64],
        n_sources: usize,
        n_samples: usize,
    ) {
        let sources = repository.source_tasks(task_id);
        if sources.len() < 2 {
            return;
        }
        let space = entry.tuner.space().clone();
        let Some(learner) = SimilarityLearner::train(&space, &sources, n_samples, 0) else {
            return;
        };
        let warm =
            warm_start_configs_with(&learner, features, &sources, n_sources, &entry.telemetry);
        if warm.is_empty() {
            return;
        }
        entry.telemetry.emit(
            entry.tuner.history().len() as u64,
            EventKind::WarmStartInjected {
                n_configs: warm.len(),
                n_sources: n_sources.min(sources.len()),
            },
        );
        // Rebuild the tuner with warm starts and the sources as ensemble
        // bases, preserving already-collected history.
        let mut opts = TunerOptionsSnapshot::capture(&entry.tuner);
        opts.options.warm_configs = warm;
        opts.options.base_tasks = sources;
        let mut tuner = OnlineTuner::new(space, opts.options);
        tuner.set_telemetry(entry.telemetry.clone());
        for o in opts.history {
            tuner.seed_observation(o.config, o.runtime, o.resource, &o.context);
        }
        entry.tuner = tuner;
    }
}

impl Default for OnlineTuneController {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot used when a tuner is rebuilt with transferred knowledge.
struct TunerOptionsSnapshot {
    options: TunerOptions,
    history: Vec<Observation>,
}

impl TunerOptionsSnapshot {
    fn capture(tuner: &OnlineTuner) -> Self {
        TunerOptionsSnapshot {
            options: tuner.options().clone(),
            history: tuner.history().to_vec(),
        }
    }
}

/// Controller errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerError {
    /// The handle does not name a registered task.
    UnknownTask,
    /// Underlying tuner protocol error.
    Tuner(TunerError),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnknownTask => write!(f, "unknown task"),
            ControllerError::Tuner(e) => write!(f, "tuner error: {e}"),
        }
    }
}

impl std::error::Error for ControllerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{ConfigSpace, Parameter};

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("n", 1, 50, 10),
            Parameter::int("m", 1, 32, 8),
        ])
    }

    fn toy_eval(c: &Configuration) -> (f64, f64) {
        let n = c[0].as_int().unwrap() as f64;
        let m = c[1].as_int().unwrap() as f64;
        (400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
    }

    #[test]
    fn request_report_cycle() {
        let mut ctl = OnlineTuneController::new();
        let h = ctl.create_task(
            "t1",
            toy_space(),
            TunerOptions {
                budget: 5,
                ..Default::default()
            },
        );
        assert_eq!(ctl.n_tasks(), 1);
        assert_eq!(ctl.state(&h), Some(TaskState::Tuning));
        for _ in 0..5 {
            let cfg = ctl.request_config(&h, &[]).unwrap();
            let (rt, r) = toy_eval(&cfg);
            ctl.report_result(&h, cfg, rt, r, &[], None).unwrap();
        }
        // Budget spent: next request flips to Stopped and serves the best.
        let best_served = ctl.request_config(&h, &[]).unwrap();
        assert_eq!(ctl.state(&h), Some(TaskState::Stopped));
        assert_eq!(Some(best_served), ctl.best_config(&h));
        assert_eq!(ctl.repository().task("t1").unwrap().observations.len(), 5);
    }

    #[test]
    fn unknown_task_rejected() {
        let mut ctl = OnlineTuneController::new();
        let bogus = TaskHandle("nope".into());
        assert_eq!(
            ctl.request_config(&bogus, &[]).unwrap_err(),
            ControllerError::UnknownTask
        );
    }

    #[test]
    fn meta_features_recorded_and_warm_start_attempted() {
        let mut ctl = OnlineTuneController::new();
        // Two completed source tasks in the repository.
        for tid in ["src-a", "src-b"] {
            let h = ctl.create_task(
                tid,
                toy_space(),
                TunerOptions {
                    budget: 8,
                    ..Default::default()
                },
            );
            for i in 0..8 {
                let cfg = ctl.request_config(&h, &[]).unwrap();
                let (rt, r) = toy_eval(&cfg);
                let features = if i == 0 {
                    Some(vec![1.0, 2.0, 3.0])
                } else {
                    None
                };
                ctl.report_result(&h, cfg, rt, r, &[], features).unwrap();
            }
        }
        // A new task reporting meta-features triggers the transfer path.
        let h = ctl.create_task(
            "new",
            toy_space(),
            TunerOptions {
                budget: 8,
                ..Default::default()
            },
        );
        let cfg = ctl.request_config(&h, &[]).unwrap();
        let (rt, r) = toy_eval(&cfg);
        ctl.report_result(&h, cfg, rt, r, &[], Some(vec![1.0, 2.0, 3.1]))
            .unwrap();
        // Tuning continues normally afterwards.
        for _ in 0..3 {
            let cfg = ctl.request_config(&h, &[]).unwrap();
            let (rt, r) = toy_eval(&cfg);
            ctl.report_result(&h, cfg, rt, r, &[], None).unwrap();
        }
        assert!(ctl.best_config(&h).is_some());
        let rec = ctl.repository().task("new").unwrap();
        assert_eq!(rec.meta_features, vec![1.0, 2.0, 3.1]);
    }

    #[test]
    fn multiple_tasks_are_independent() {
        let mut ctl = OnlineTuneController::new();
        let h1 = ctl.create_task(
            "a",
            toy_space(),
            TunerOptions {
                budget: 3,
                ..Default::default()
            },
        );
        let h2 = ctl.create_task(
            "b",
            toy_space(),
            TunerOptions {
                budget: 3,
                ..Default::default()
            },
        );
        let c1 = ctl.request_config(&h1, &[]).unwrap();
        let c2 = ctl.request_config(&h2, &[]).unwrap();
        let (rt1, r1) = toy_eval(&c1);
        let (rt2, r2) = toy_eval(&c2);
        ctl.report_result(&h1, c1, rt1, r1, &[], None).unwrap();
        ctl.report_result(&h2, c2, rt2, r2, &[], None).unwrap();
        assert_eq!(ctl.repository().task("a").unwrap().observations.len(), 1);
        assert_eq!(ctl.repository().task("b").unwrap().observations.len(), 1);
    }
}
