//! Crash-recovery snapshots of tuner state.
//!
//! The entire tuning stack is deterministic given its options (seeded
//! RNGs, pool-width-invariant fits, fingerprint-keyed caches), so a
//! snapshot does not serialize surrogate internals or RNG state at all.
//! It records only the *decisions* — the runhistory (with failure flags
//! and seeded/iterated provenance), the pending suggestion, and the
//! lifecycle counters — and [`OnlineTuner::resume`] rebuilds
//! bitwise-identical state by replaying the real suggest path over the
//! recorded history, verifying at every step that the regenerated
//! suggestion matches the recorded one.
//!
//! [`OnlineTuner::resume`]: crate::tuner::OnlineTuner::resume

use crate::generator::SuggestionSource;
use crate::tuner::TunerError;
use otune_bo::Observation;
use otune_meta::TaskRecord;
use otune_space::Configuration;
use serde::{Deserialize, Serialize};

/// The pending (suggested, not yet observed) configuration at snapshot
/// time, with the context it was generated under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingSuggestion {
    /// The suggested configuration.
    pub config: Configuration,
    /// Which mechanism produced it.
    pub source: SuggestionSource,
    /// EIC value at the choice.
    pub eic: f64,
    /// Whether the choice came from inside the GP safe region.
    pub from_safe_region: bool,
    /// The workload context `suggest` was called with — resume needs it
    /// to regenerate (and verify) the suggestion.
    pub context: Vec<f64>,
}

/// A complete, replayable record of one tuner's state, written to the
/// repository (or a JSONL log) after every observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerSnapshot {
    /// The tuning task this snapshot belongs to.
    pub task_id: String,
    /// Options fingerprint: resume refuses a snapshot taken under a
    /// different seed (the replay would diverge silently otherwise).
    pub seed: u64,
    /// Options fingerprint: iteration budget.
    pub budget: usize,
    /// The current round's runhistory, censored failures included.
    pub history: Vec<Observation>,
    /// Indices into `history` that were seeded (no suggest call, no
    /// budget consumed).
    #[serde(default)]
    pub seeded_idx: Vec<usize>,
    /// The in-flight suggestion, if a run was pending when the snapshot
    /// was taken.
    pub pending: Option<PendingSuggestion>,
    /// Whether tuning had stopped (budget or EI criterion).
    pub stopped: bool,
    /// Consecutive degraded post-tuning runs.
    pub degraded_streak: usize,
    /// Consecutive failed runs in the current round.
    #[serde(default)]
    pub failure_streak: usize,
    /// Restarts performed before this snapshot.
    pub restarts: usize,
    /// Iterations consumed in the current round.
    pub round_iterations: usize,
    /// Completed rounds' histories (from restarts), fed to the ensemble.
    pub own_records: Vec<TaskRecord>,
}

/// Why a resume failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The options passed to `resume` disagree with the snapshot's
    /// fingerprint on the named field.
    OptionsMismatch {
        /// Which fingerprint field disagreed.
        field: &'static str,
    },
    /// Replaying the suggest path produced a different configuration
    /// than the snapshot recorded at history index `at` — the snapshot
    /// was taken under different code, options, or a corrupted history.
    ReplayDivergence {
        /// History index (or `history.len()` for the pending suggestion)
        /// where the replay diverged.
        at: usize,
    },
    /// The tuner itself errored during replay.
    Tuner(TunerError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::OptionsMismatch { field } => {
                write!(f, "resume options disagree with the snapshot on `{field}`")
            }
            ResumeError::ReplayDivergence { at } => {
                write!(f, "replay diverged from the snapshot at history index {at}")
            }
            ResumeError::Tuner(e) => write!(f, "tuner error during replay: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<TunerError> for ResumeError {
    fn from(e: TunerError) -> Self {
        ResumeError::Tuner(e)
    }
}
