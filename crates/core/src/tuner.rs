//! The single-task online tuner: the iterative workflow of §3.1 for one
//! periodic Spark job, including the stopping and restarting criteria.

use crate::generator::{ConfigGenerator, GeneratorOptions, Suggestion, SuggestionSource};
use crate::objective::{Constraints, Objective};
use otune_bo::{best_observation, CandidateParams, Observation, SubspaceParams};
use otune_gp::IncrementalPolicy;
use otune_meta::{EnsembleSurrogate, MetaCache, TaskRecord};
use otune_pool::Pool;
use otune_space::{ConfigSpace, Configuration};
use otune_telemetry::{metric, EventKind, StopReason, SuggestionKind, Telemetry};
use std::sync::Arc;

impl SuggestionSource {
    /// The telemetry mirror of this provenance.
    pub fn kind(self) -> SuggestionKind {
        match self {
            SuggestionSource::WarmStart => SuggestionKind::WarmStart,
            SuggestionSource::InitialDesign => SuggestionKind::InitialDesign,
            SuggestionSource::Agd => SuggestionKind::Agd,
            SuggestionSource::Bo => SuggestionKind::Bo,
            SuggestionSource::Fallback => SuggestionKind::Fallback,
        }
    }
}

/// Options for one tuning task. `Default` gives the paper's settings with
/// the cost objective and no constraints.
#[derive(Debug, Clone)]
pub struct TunerOptions {
    /// Objective exponent β (Eq. 1).
    pub beta: f64,
    /// Maximum tolerated runtime `T_max` (None disables).
    pub t_max: Option<f64>,
    /// Maximum tolerated resource `R_max` (None disables).
    pub r_max: Option<f64>,
    /// Tuning budget in iterations; afterwards the best configuration is
    /// returned unchanged.
    pub budget: usize,
    /// Initial-design size.
    pub n_init: usize,
    /// AGD cadence (0 disables).
    pub n_agd: usize,
    /// Safe-region pessimism γ.
    pub gamma: f64,
    /// Gate the safe-region filter (Figure 8 ablation).
    pub enable_safety: bool,
    /// Gate adaptive sub-space generation (Figure 7 ablation).
    pub enable_subspace: bool,
    /// Gate the meta-learning ensemble surrogate (Figure 6 ablation).
    pub enable_meta: bool,
    /// Warm-start configurations (from §5.2's similarity ranking).
    pub warm_configs: Vec<Configuration>,
    /// Previous-task records feeding the ensemble surrogate.
    pub base_tasks: Vec<TaskRecord>,
    /// Stop when EIC falls below this fraction of the incumbent objective
    /// (§3.3's stopping criterion; 0 disables).
    pub ei_stop_ratio: f64,
    /// Restart tuning after this many consecutive post-tuning runs whose
    /// objective degrades > [`TunerOptions::degradation_factor`] over the
    /// expected (best) value. 0 disables restart detection.
    pub restart_after: usize,
    /// Degradation multiplier that counts a run as degraded.
    pub degradation_factor: f64,
    /// Sub-space evolution parameters (`None` = paper defaults for the
    /// space's parameter count).
    pub subspace: Option<SubspaceParams>,
    /// Candidate-generation parameters.
    pub candidates: CandidateParams,
    /// Surrogate maintenance across iterations (rank-one factor updates,
    /// warm-started hyperparameter re-searches, fit caches). Defaults to
    /// [`IncrementalPolicy::from_env`] (`OTUNE_INCREMENTAL`).
    pub incremental: IncrementalPolicy,
    /// Seed for all randomized components.
    pub seed: u64,
    /// Worker pool shared by surrogate fitting, acquisition maximization,
    /// and forest growing. Defaults to [`Pool::from_env`] (`OTUNE_THREADS`
    /// or the machine's parallelism); suggestions are bitwise-identical
    /// for every pool width.
    pub pool: Pool,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            beta: 0.5,
            t_max: None,
            r_max: None,
            budget: 20,
            n_init: 3,
            n_agd: 5,
            gamma: 1.0,
            enable_safety: true,
            enable_subspace: true,
            enable_meta: true,
            warm_configs: Vec::new(),
            base_tasks: Vec::new(),
            ei_stop_ratio: 0.0,
            restart_after: 3,
            degradation_factor: 1.5,
            subspace: None,
            candidates: CandidateParams::default(),
            incremental: IncrementalPolicy::from_env(),
            seed: 0,
            pool: Pool::from_env(),
        }
    }
}

/// Errors surfaced by the tuner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunerError {
    /// `suggest` was called twice without an intervening `observe`.
    PendingObservation,
    /// `observe` did not match a pending suggestion.
    NoPendingSuggestion,
}

impl std::fmt::Display for TunerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunerError::PendingObservation => {
                write!(f, "a suggestion is pending; call observe() first")
            }
            TunerError::NoPendingSuggestion => write!(f, "no suggestion pending"),
        }
    }
}

impl std::error::Error for TunerError {}

/// The online tuner for one periodic Spark job.
///
/// Lifecycle per period: [`OnlineTuner::suggest`] → run the job with the
/// returned configuration → [`OnlineTuner::observe`] the metrics. After the
/// budget (or the EI stopping criterion) the tuner keeps returning the
/// best configuration found; if post-tuning executions degrade persistently
/// it restarts tuning, transferring its own history via the meta ensemble
/// (§3.3 "Stopping & Restarting Criterion").
pub struct OnlineTuner {
    space: ConfigSpace,
    opts: TunerOptions,
    generator: ConfigGenerator,
    objective: Objective,
    history: Vec<Observation>,
    pending: Option<Suggestion>,
    stopped: bool,
    /// Consecutive degraded post-tuning runs.
    degraded_streak: usize,
    /// Number of restarts performed.
    restarts: usize,
    /// Extra base tasks accumulated from restarts.
    own_records: Vec<TaskRecord>,
    /// Iterations consumed in the current tuning round.
    round_iterations: usize,
    /// Cross-iteration caches for the meta ensemble (frozen base-task
    /// surrogates, incremental target surrogate, weight-fold memo).
    meta_cache: MetaCache,
    /// Observability handle (disabled by default).
    telemetry: Telemetry,
}

impl OnlineTuner {
    /// Create a tuner over the given space. The analytic resource function
    /// is derived from the well-known Spark parameters when present, else
    /// it falls back to a constant (runtime-only tuning).
    pub fn new(space: ConfigSpace, opts: TunerOptions) -> Self {
        let resource_fn = crate::objective::resource_fn_for(&space);
        Self::with_resource_fn(space, opts, resource_fn)
    }

    /// Create a tuner with an explicit analytic resource function.
    pub fn with_resource_fn(
        space: ConfigSpace,
        opts: TunerOptions,
        resource_fn: Arc<dyn Fn(&Configuration) -> f64 + Send + Sync>,
    ) -> Self {
        let generator = Self::make_generator(&space, &opts, resource_fn);
        OnlineTuner {
            objective: Objective::new(opts.beta),
            generator,
            space,
            meta_cache: MetaCache::new(opts.incremental),
            opts,
            history: Vec::new(),
            pending: None,
            stopped: false,
            degraded_streak: 0,
            restarts: 0,
            own_records: Vec::new(),
            round_iterations: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; the tuner (and its generator) emit
    /// events and metrics through it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.generator.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    fn make_generator(
        space: &ConfigSpace,
        opts: &TunerOptions,
        resource_fn: Arc<dyn Fn(&Configuration) -> f64 + Send + Sync>,
    ) -> ConfigGenerator {
        let gen_opts = GeneratorOptions {
            objective: Objective::new(opts.beta),
            constraints: Constraints {
                t_max: opts.t_max,
                r_max: opts.r_max,
            },
            n_init: opts.n_init,
            n_agd: opts.n_agd,
            gamma: opts.gamma,
            enable_safety: opts.enable_safety,
            enable_subspace: opts.enable_subspace,
            subspace: opts
                .subspace
                .unwrap_or_else(|| SubspaceParams::paper_defaults(space.len())),
            candidates: opts.candidates,
            fanova_period: 5,
            incremental: opts.incremental,
            seed: opts.seed,
            pool: opts.pool.clone(),
        };
        let ranking = if space.len() == 30 {
            otune_bo::subspace::spark_expert_ranking()
        } else {
            (0..space.len()).collect()
        };
        ConfigGenerator::new(space.clone(), gen_opts, ranking, resource_fn)
    }

    /// The configuration space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The tuner's options.
    pub fn options(&self) -> &TunerOptions {
        &self.opts
    }

    /// The runhistory so far.
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Whether tuning has stopped (budget or EI criterion).
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Number of restarts triggered by degradation detection.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The objective definition.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Best (feasible-first) observation so far.
    pub fn best(&self) -> Option<&Observation> {
        best_observation(&self.history, self.opts.t_max, self.opts.r_max)
    }

    /// The configuration for the next periodic execution (Step 1 of
    /// Figure 1). While tuning: the generator's next suggestion. After
    /// stopping: the best configuration found.
    pub fn suggest(&mut self, context: &[f64]) -> Result<Configuration, TunerError> {
        if self.pending.is_some() {
            return Err(TunerError::PendingObservation);
        }
        if self.stopped || self.round_iterations >= self.opts.budget {
            if !self.stopped {
                self.telemetry.emit(
                    self.round_iterations as u64,
                    EventKind::TaskStopped {
                        reason: StopReason::BudgetExhausted,
                    },
                );
            }
            self.stopped = true;
            let best = self
                .best()
                .map(|o| o.config.clone())
                .unwrap_or_else(|| self.space.default_configuration());
            self.pending = Some(Suggestion {
                config: best.clone(),
                source: SuggestionSource::Fallback,
                eic: 0.0,
                from_safe_region: true,
            });
            return Ok(best);
        }

        let ensemble = self.build_ensemble();
        let warm = self.opts.warm_configs.clone();
        let suggestion = {
            let _span = self.telemetry.span(metric::SUGGEST_LATENCY_S);
            self.generator.suggest(
                &self.history,
                context,
                &warm,
                ensemble.as_ref().map(|e| e as &dyn otune_bo::Predictor),
            )
        };
        self.telemetry.emit(
            self.round_iterations as u64,
            EventKind::SuggestionMade {
                source: suggestion.source.kind(),
                eic: suggestion.eic,
                in_safe_region: suggestion.from_safe_region,
            },
        );
        let pool_stats = self.opts.pool.stats();
        self.telemetry
            .gauge(metric::POOL_THREADS, self.opts.pool.threads() as f64);
        self.telemetry
            .gauge(metric::POOL_PARALLEL_MAPS, pool_stats.parallel_maps as f64);
        self.telemetry.gauge(
            metric::POOL_PARALLEL_TASKS,
            pool_stats.parallel_tasks as f64,
        );

        // Stopping criterion: negligible expected improvement (§3.3).
        if self.opts.ei_stop_ratio > 0.0
            && matches!(suggestion.source, SuggestionSource::Bo)
            && self.round_iterations > self.opts.n_init + 2
        {
            if let Some(best_cfg) = self.best().map(|b| b.config.clone()) {
                // EIC is computed on the log objective, so it directly
                // measures the expected *relative* improvement (§3.3's
                // "expected improvement less than a threshold, e.g. 10%").
                if suggestion.eic < self.opts.ei_stop_ratio && suggestion.from_safe_region {
                    self.telemetry.emit(
                        self.round_iterations as u64,
                        EventKind::TaskStopped {
                            reason: StopReason::EiConverged,
                        },
                    );
                    self.stopped = true;
                    self.pending = Some(Suggestion {
                        config: best_cfg.clone(),
                        source: SuggestionSource::Fallback,
                        eic: suggestion.eic,
                        from_safe_region: true,
                    });
                    return Ok(best_cfg);
                }
            }
        }

        let config = suggestion.config.clone();
        self.pending = Some(suggestion);
        Ok(config)
    }

    /// Provenance of the pending suggestion (diagnostics).
    pub fn pending_source(&self) -> Option<SuggestionSource> {
        self.pending.as_ref().map(|s| s.source)
    }

    /// Report the execution result of the pending suggestion (Step 2 of
    /// Figure 1). `runtime_s` and `resource` come from the platform;
    /// `context` must match what was passed to [`OnlineTuner::suggest`].
    pub fn observe(
        &mut self,
        config: Configuration,
        runtime_s: f64,
        resource: f64,
        context: &[f64],
    ) -> Result<(), TunerError> {
        let pending = self.pending.take().ok_or(TunerError::NoPendingSuggestion)?;
        debug_assert_eq!(
            pending.config, config,
            "observed config must match suggestion"
        );
        let objective = self.objective.eval(runtime_s, resource);

        if self.stopped {
            // Post-tuning: watch for continuous degradation (§3.3).
            let expected = self.best().map(|o| o.objective).unwrap_or(objective);
            if self.opts.restart_after > 0 && objective > expected * self.opts.degradation_factor {
                self.degraded_streak += 1;
                if self.degraded_streak >= self.opts.restart_after {
                    self.restart();
                }
            } else {
                self.degraded_streak = 0;
            }
            return Ok(());
        }

        self.history.push(Observation {
            config,
            objective,
            runtime: runtime_s,
            resource,
            context: context.to_vec(),
        });
        self.round_iterations += 1;
        Ok(())
    }

    /// Seed the runhistory with an already-executed configuration (e.g.
    /// the manual configuration's production metrics). Does not consume
    /// budget.
    pub fn seed_observation(
        &mut self,
        config: Configuration,
        runtime_s: f64,
        resource: f64,
        context: &[f64],
    ) {
        let objective = self.objective.eval(runtime_s, resource);
        self.history.push(Observation {
            config,
            objective,
            runtime: runtime_s,
            resource,
            context: context.to_vec(),
        });
    }

    /// Force a tuning restart: the current runhistory becomes a base task
    /// for the meta ensemble, and a fresh tuning round begins (workload
    /// drift response, §3.3).
    pub fn restart(&mut self) {
        self.restarts += 1;
        self.degraded_streak = 0;
        if !self.history.is_empty() {
            self.own_records.push(TaskRecord {
                task_id: format!("self-round-{}", self.restarts),
                meta_features: Vec::new(),
                observations: std::mem::take(&mut self.history),
            });
        }
        self.stopped = false;
        self.round_iterations = 0;
        // The round's history now lives under a new base-task id and the
        // target history restarts empty — begin from a clean cache.
        self.meta_cache.clear();
        let resource_fn = crate::objective::resource_fn_for(&self.space);
        self.generator = Self::make_generator(&self.space, &self.opts, resource_fn);
        self.generator.set_telemetry(self.telemetry.clone());
    }

    /// Export this task's history as a [`TaskRecord`] for the repository.
    pub fn export_record(&self, task_id: &str, meta_features: Vec<f64>) -> TaskRecord {
        TaskRecord {
            task_id: task_id.to_string(),
            meta_features,
            observations: self.history.clone(),
        }
    }

    fn build_ensemble(&mut self) -> Option<EnsembleSurrogate> {
        if !self.opts.enable_meta {
            return None;
        }
        let mut bases: Vec<TaskRecord> = self.opts.base_tasks.clone();
        bases.extend(self.own_records.iter().cloned());
        if bases.is_empty() {
            return None;
        }
        // The generator's EIC works on the log objective; the ensemble's
        // member surrogates must live on the same scale.
        let log = |obs: &[Observation]| -> Vec<Observation> {
            obs.iter()
                .map(|o| Observation {
                    objective: o.objective.max(1e-9).ln(),
                    ..o.clone()
                })
                .collect()
        };
        let bases: Vec<TaskRecord> = bases
            .into_iter()
            .map(|t| TaskRecord {
                observations: log(&t.observations),
                ..t
            })
            .collect();
        EnsembleSurrogate::build_cached(
            &self.space,
            &bases,
            &log(&self.history),
            50,
            self.opts.seed,
            &mut self.meta_cache,
            &self.telemetry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{ParamValue, Parameter};

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("n", 1, 50, 10),
            Parameter::int("m", 1, 32, 8),
        ])
    }

    fn toy_resource(c: &Configuration) -> f64 {
        c[0].as_int().unwrap() as f64 * (1.0 + 0.5 * c[1].as_int().unwrap() as f64)
    }

    fn toy_runtime(c: &Configuration) -> f64 {
        400.0 / c[0].as_int().unwrap() as f64 + 30.0 / c[1].as_int().unwrap() as f64 + 10.0
    }

    fn make_tuner(opts: TunerOptions) -> OnlineTuner {
        OnlineTuner::with_resource_fn(toy_space(), opts, Arc::new(toy_resource))
    }

    fn drive(tuner: &mut OnlineTuner, rounds: usize) {
        for _ in 0..rounds {
            let cfg = tuner.suggest(&[]).unwrap();
            let (rt, r) = (toy_runtime(&cfg), toy_resource(&cfg));
            tuner.observe(cfg, rt, r, &[]).unwrap();
        }
    }

    #[test]
    fn improves_over_default_within_budget() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 15,
            seed: 1,
            ..Default::default()
        });
        let d = toy_space().default_configuration();
        tuner.seed_observation(d.clone(), toy_runtime(&d), toy_resource(&d), &[]);
        let initial = tuner.history()[0].objective;
        drive(&mut tuner, 15);
        let best = tuner.best().unwrap().objective;
        assert!(best < initial, "{best} !< {initial}");
        assert_eq!(tuner.history().len(), 16);
    }

    #[test]
    fn budget_exhaustion_returns_best_config() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 5,
            ..Default::default()
        });
        drive(&mut tuner, 5);
        assert!(!tuner.is_stopped());
        let best = tuner.best().unwrap().config.clone();
        let next = tuner.suggest(&[]).unwrap();
        assert!(tuner.is_stopped());
        assert_eq!(next, best, "post-budget suggestions are the incumbent");
        tuner.observe(next, 100.0, 10.0, &[]).unwrap();
        // History no longer grows post-stop.
        assert_eq!(tuner.history().len(), 5);
    }

    #[test]
    fn suggest_twice_without_observe_errors() {
        let mut tuner = make_tuner(TunerOptions::default());
        let _ = tuner.suggest(&[]).unwrap();
        assert_eq!(
            tuner.suggest(&[]).unwrap_err(),
            TunerError::PendingObservation
        );
    }

    #[test]
    fn observe_without_suggest_errors() {
        let mut tuner = make_tuner(TunerOptions::default());
        let cfg = toy_space().default_configuration();
        assert_eq!(
            tuner.observe(cfg, 1.0, 1.0, &[]).unwrap_err(),
            TunerError::NoPendingSuggestion
        );
    }

    #[test]
    fn degradation_triggers_restart() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            restart_after: 3,
            degradation_factor: 1.2,
            ..Default::default()
        });
        drive(&mut tuner, 4);
        // Exhaust the budget → stopped.
        let cfg = tuner.suggest(&[]).unwrap();
        assert!(tuner.is_stopped());
        tuner.observe(cfg, 1e6, 1e6, &[]).unwrap(); // degraded run 1
        for _ in 0..2 {
            let cfg = tuner.suggest(&[]).unwrap();
            tuner.observe(cfg, 1e6, 1e6, &[]).unwrap();
        }
        assert_eq!(tuner.restarts(), 1);
        assert!(!tuner.is_stopped(), "tuning resumed after restart");
        // Old history moved into base records; a new round begins.
        assert!(tuner.history().is_empty());
    }

    #[test]
    fn healthy_post_tuning_runs_do_not_restart() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            ..Default::default()
        });
        drive(&mut tuner, 4);
        let best_rt = tuner.best().unwrap().runtime;
        let best_r = tuner.best().unwrap().resource;
        for _ in 0..6 {
            let cfg = tuner.suggest(&[]).unwrap();
            tuner.observe(cfg, best_rt, best_r, &[]).unwrap();
        }
        assert_eq!(tuner.restarts(), 0);
    }

    #[test]
    fn warm_configs_come_first() {
        let space = toy_space();
        let warm = space
            .configuration(vec![ParamValue::Int(7), ParamValue::Int(3)])
            .unwrap();
        let mut tuner = make_tuner(TunerOptions {
            warm_configs: vec![warm.clone()],
            ..Default::default()
        });
        let first = tuner.suggest(&[]).unwrap();
        assert_eq!(first, warm);
    }

    #[test]
    fn export_record_captures_history() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            ..Default::default()
        });
        drive(&mut tuner, 4);
        let rec = tuner.export_record("toy", vec![1.0, 2.0]);
        assert_eq!(rec.task_id, "toy");
        assert_eq!(rec.observations.len(), 4);
        assert_eq!(rec.meta_features, vec![1.0, 2.0]);
    }

    #[test]
    fn safety_reduces_constraint_violations() {
        let space = toy_space();
        let d = space.default_configuration();
        let t_max = toy_runtime(&d) * 1.2;
        let run = |enable_safety: bool, seed: u64| -> usize {
            let mut tuner = make_tuner(TunerOptions {
                budget: 18,
                t_max: Some(t_max),
                enable_safety,
                n_agd: 0,
                seed,
                ..Default::default()
            });
            tuner.seed_observation(d.clone(), toy_runtime(&d), toy_resource(&d), &[]);
            let mut violations = 0;
            for _ in 0..18 {
                let cfg = tuner.suggest(&[]).unwrap();
                let rt = toy_runtime(&cfg);
                if rt > t_max {
                    violations += 1;
                }
                let r = toy_resource(&cfg);
                tuner.observe(cfg, rt, r, &[]).unwrap();
            }
            violations
        };
        let unsafe_v: usize = (0..3).map(|s| run(false, s)).sum();
        let safe_v: usize = (0..3).map(|s| run(true, s)).sum();
        assert!(safe_v <= unsafe_v, "safety helps: {safe_v} vs {unsafe_v}");
    }
}
