//! The single-task online tuner: the iterative workflow of §3.1 for one
//! periodic Spark job, including the stopping and restarting criteria.

use crate::generator::{ConfigGenerator, GeneratorOptions, Suggestion, SuggestionSource};
use crate::objective::{Constraints, Objective};
use crate::snapshot::{PendingSuggestion, ResumeError, TunerSnapshot};
use otune_bo::{best_observation, CandidateParams, Observation, SubspaceParams};
use otune_gp::{IncrementalPolicy, SparseGpConfig};
use otune_meta::{EnsembleSurrogate, MetaCache, TaskRecord};
use otune_pool::Pool;
use otune_space::{ConfigSpace, Configuration};
use otune_telemetry::{metric, EventKind, StopReason, SuggestionKind, Telemetry};
use std::sync::Arc;

impl SuggestionSource {
    /// The telemetry mirror of this provenance.
    pub fn kind(self) -> SuggestionKind {
        match self {
            SuggestionSource::WarmStart => SuggestionKind::WarmStart,
            SuggestionSource::Retrieval => SuggestionKind::Retrieval,
            SuggestionSource::InitialDesign => SuggestionKind::InitialDesign,
            SuggestionSource::Agd => SuggestionKind::Agd,
            SuggestionSource::Bo => SuggestionKind::Bo,
            SuggestionSource::Fallback => SuggestionKind::Fallback,
        }
    }
}

/// Options for one tuning task. `Default` gives the paper's settings with
/// the cost objective and no constraints.
#[derive(Debug, Clone)]
pub struct TunerOptions {
    /// Objective exponent β (Eq. 1).
    pub beta: f64,
    /// Maximum tolerated runtime `T_max` (None disables).
    pub t_max: Option<f64>,
    /// Maximum tolerated resource `R_max` (None disables).
    pub r_max: Option<f64>,
    /// Tuning budget in iterations; afterwards the best configuration is
    /// returned unchanged.
    pub budget: usize,
    /// Initial-design size.
    pub n_init: usize,
    /// AGD cadence (0 disables).
    pub n_agd: usize,
    /// Safe-region pessimism γ.
    pub gamma: f64,
    /// Gate the safe-region filter (Figure 8 ablation).
    pub enable_safety: bool,
    /// Gate adaptive sub-space generation (Figure 7 ablation).
    pub enable_subspace: bool,
    /// Gate the meta-learning ensemble surrogate (Figure 6 ablation).
    pub enable_meta: bool,
    /// Warm-start configurations (from §5.2's similarity ranking).
    pub warm_configs: Vec<Configuration>,
    /// Corpus-retrieved zero-execution bootstrap configurations: when
    /// non-empty they replace low-discrepancy burn-in points `0..len`.
    /// Empty (the default) keeps every suggestion bitwise-identical to
    /// the retrieval-free tuner.
    pub retrieval_configs: Vec<Configuration>,
    /// Previous-task records feeding the ensemble surrogate.
    pub base_tasks: Vec<TaskRecord>,
    /// Stop when EIC falls below this fraction of the incumbent objective
    /// (§3.3's stopping criterion; 0 disables).
    pub ei_stop_ratio: f64,
    /// Restart tuning after this many consecutive post-tuning runs whose
    /// objective degrades > [`TunerOptions::degradation_factor`] over the
    /// expected (best) value. 0 disables restart detection.
    pub restart_after: usize,
    /// Degradation multiplier that counts a run as degraded.
    pub degradation_factor: f64,
    /// After this many *consecutive* failed runs the tuner falls back to
    /// the last known-safe configuration for one period (0 disables).
    pub tau_consec: usize,
    /// Censoring multiplier for failed runs: the recorded runtime is
    /// `failure_penalty × T_max` (or the worst runtime seen when `T_max`
    /// is unset), keeping the safe-region GP pessimistic about the
    /// failing region without feeding it the unknowable true runtime.
    pub failure_penalty: f64,
    /// Sub-space evolution parameters (`None` = paper defaults for the
    /// space's parameter count).
    pub subspace: Option<SubspaceParams>,
    /// Candidate-generation parameters.
    pub candidates: CandidateParams,
    /// Surrogate maintenance across iterations (rank-one factor updates,
    /// warm-started hyperparameter re-searches, fit caches). Defaults to
    /// [`IncrementalPolicy::from_env`] (`OTUNE_INCREMENTAL`).
    pub incremental: IncrementalPolicy,
    /// Local-subset sparse GP for large histories (`None` = always exact).
    /// Defaults to [`SparseGpConfig::from_env`] (`OTUNE_SPARSE_GP`).
    pub sparse_gp: Option<SparseGpConfig>,
    /// Seed for all randomized components.
    pub seed: u64,
    /// Worker pool shared by surrogate fitting, acquisition maximization,
    /// and forest growing. Defaults to [`Pool::from_env`] (`OTUNE_THREADS`
    /// or the machine's parallelism); suggestions are bitwise-identical
    /// for every pool width.
    pub pool: Pool,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            beta: 0.5,
            t_max: None,
            r_max: None,
            budget: 20,
            n_init: 3,
            n_agd: 5,
            gamma: 1.0,
            enable_safety: true,
            enable_subspace: true,
            enable_meta: true,
            warm_configs: Vec::new(),
            retrieval_configs: Vec::new(),
            base_tasks: Vec::new(),
            ei_stop_ratio: 0.0,
            restart_after: 3,
            degradation_factor: 1.5,
            tau_consec: 3,
            failure_penalty: 2.0,
            subspace: None,
            candidates: CandidateParams::default(),
            incremental: IncrementalPolicy::from_env(),
            sparse_gp: SparseGpConfig::from_env(),
            seed: 0,
            pool: Pool::from_env(),
        }
    }
}

/// Errors surfaced by the tuner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunerError {
    /// `suggest` was called twice without an intervening `observe`.
    PendingObservation,
    /// `observe` did not match a pending suggestion.
    NoPendingSuggestion,
    /// `observe` reported a configuration that differs from the pending
    /// suggestion. The pending suggestion stays pending; the report is
    /// rejected instead of poisoning the runhistory (or panicking).
    SuggestionMismatch,
}

impl std::fmt::Display for TunerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunerError::PendingObservation => {
                write!(f, "a suggestion is pending; call observe() first")
            }
            TunerError::NoPendingSuggestion => write!(f, "no suggestion pending"),
            TunerError::SuggestionMismatch => {
                write!(
                    f,
                    "observed configuration does not match the pending suggestion"
                )
            }
        }
    }
}

impl std::error::Error for TunerError {}

/// The online tuner for one periodic Spark job.
///
/// Lifecycle per period: [`OnlineTuner::suggest`] → run the job with the
/// returned configuration → [`OnlineTuner::observe`] the metrics. After the
/// budget (or the EI stopping criterion) the tuner keeps returning the
/// best configuration found; if post-tuning executions degrade persistently
/// it restarts tuning, transferring its own history via the meta ensemble
/// (§3.3 "Stopping & Restarting Criterion").
pub struct OnlineTuner {
    space: ConfigSpace,
    opts: TunerOptions,
    generator: ConfigGenerator,
    objective: Objective,
    history: Vec<Observation>,
    pending: Option<Suggestion>,
    /// The context the pending suggestion was generated with (snapshots
    /// need it to regenerate the suggestion on resume).
    pending_context: Vec<f64>,
    stopped: bool,
    /// Consecutive failed runs in the current tuning round.
    failure_streak: usize,
    /// Indices into `history` that were seeded (no budget consumed), in
    /// insertion order — resume replays them without a suggest call.
    seeded_idx: Vec<usize>,
    /// Consecutive degraded post-tuning runs.
    degraded_streak: usize,
    /// Number of restarts performed.
    restarts: usize,
    /// Extra base tasks accumulated from restarts.
    own_records: Vec<TaskRecord>,
    /// Iterations consumed in the current tuning round.
    round_iterations: usize,
    /// Cross-iteration caches for the meta ensemble (frozen base-task
    /// surrogates, incremental target surrogate, weight-fold memo).
    meta_cache: MetaCache,
    /// Observability handle (disabled by default).
    telemetry: Telemetry,
}

impl OnlineTuner {
    /// Create a tuner over the given space. The analytic resource function
    /// is derived from the well-known Spark parameters when present, else
    /// it falls back to a constant (runtime-only tuning).
    pub fn new(space: ConfigSpace, opts: TunerOptions) -> Self {
        let resource_fn = crate::objective::resource_fn_for(&space);
        Self::with_resource_fn(space, opts, resource_fn)
    }

    /// Create a tuner with an explicit analytic resource function.
    pub fn with_resource_fn(
        space: ConfigSpace,
        opts: TunerOptions,
        resource_fn: Arc<dyn Fn(&Configuration) -> f64 + Send + Sync>,
    ) -> Self {
        let generator = Self::make_generator(&space, &opts, resource_fn);
        OnlineTuner {
            objective: Objective::new(opts.beta),
            generator,
            space,
            meta_cache: MetaCache::new(opts.incremental),
            opts,
            history: Vec::new(),
            pending: None,
            pending_context: Vec::new(),
            stopped: false,
            failure_streak: 0,
            seeded_idx: Vec::new(),
            degraded_streak: 0,
            restarts: 0,
            own_records: Vec::new(),
            round_iterations: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; the tuner (and its generator) emit
    /// events and metrics through it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.generator.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Attach a fleet-wide [`SharedMetaStore`]: base-task surrogate fits
    /// are deduped across all tasks sharing the store, without changing any
    /// suggestion (fits are pure functions of their cache key).
    pub fn set_shared_meta(&mut self, store: Arc<otune_meta::SharedMetaStore>) {
        self.meta_cache.set_shared(store);
    }

    fn make_generator(
        space: &ConfigSpace,
        opts: &TunerOptions,
        resource_fn: Arc<dyn Fn(&Configuration) -> f64 + Send + Sync>,
    ) -> ConfigGenerator {
        let gen_opts = GeneratorOptions {
            objective: Objective::new(opts.beta),
            constraints: Constraints {
                t_max: opts.t_max,
                r_max: opts.r_max,
            },
            n_init: opts.n_init,
            n_agd: opts.n_agd,
            gamma: opts.gamma,
            enable_safety: opts.enable_safety,
            enable_subspace: opts.enable_subspace,
            subspace: opts
                .subspace
                .unwrap_or_else(|| SubspaceParams::paper_defaults(space.len())),
            candidates: opts.candidates,
            fanova_period: 5,
            incremental: opts.incremental,
            sparse: opts.sparse_gp,
            seed: opts.seed,
            pool: opts.pool.clone(),
            retrieval: opts.retrieval_configs.clone(),
        };
        let ranking = if space.len() == 30 {
            otune_bo::subspace::spark_expert_ranking()
        } else {
            (0..space.len()).collect()
        };
        ConfigGenerator::new(space.clone(), gen_opts, ranking, resource_fn)
    }

    /// The configuration space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The tuner's options.
    pub fn options(&self) -> &TunerOptions {
        &self.opts
    }

    /// The runhistory so far.
    pub fn history(&self) -> &[Observation] {
        &self.history
    }

    /// Whether tuning has stopped (budget or EI criterion).
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Number of restarts triggered by degradation detection.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The objective definition.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Best (feasible-first) observation so far.
    pub fn best(&self) -> Option<&Observation> {
        best_observation(&self.history, self.opts.t_max, self.opts.r_max)
    }

    /// The configuration for the next periodic execution (Step 1 of
    /// Figure 1). While tuning: the generator's next suggestion. After
    /// stopping: the best configuration found.
    pub fn suggest(&mut self, context: &[f64]) -> Result<Configuration, TunerError> {
        if self.pending.is_some() {
            return Err(TunerError::PendingObservation);
        }
        self.pending_context = context.to_vec();
        if self.stopped || self.round_iterations >= self.opts.budget {
            if !self.stopped {
                self.telemetry.emit(
                    self.round_iterations as u64,
                    EventKind::TaskStopped {
                        reason: StopReason::BudgetExhausted,
                    },
                );
            }
            self.stopped = true;
            let best = self
                .best()
                .map(|o| o.config.clone())
                .unwrap_or_else(|| self.space.default_configuration());
            self.pending = Some(Suggestion {
                config: best.clone(),
                source: SuggestionSource::Fallback,
                eic: 0.0,
                from_safe_region: true,
            });
            return Ok(best);
        }

        // Failure-streak fallback (§3.2's safety stance under failing
        // production runs): after `τ_consec` consecutive failures, retreat
        // to the last known-safe configuration for one period. The
        // sub-space has already been shrunk by the failures themselves
        // (each failed run counts as a TuRBO failure via infeasibility).
        if self.opts.tau_consec > 0 && self.failure_streak >= self.opts.tau_consec {
            let streak = self.failure_streak;
            self.failure_streak = 0;
            self.telemetry.incr(metric::FALLBACKS_TRIGGERED);
            self.telemetry.emit(
                self.round_iterations as u64,
                EventKind::FallbackTriggered { streak },
            );
            let config = self.last_known_safe();
            self.pending = Some(Suggestion {
                config: config.clone(),
                source: SuggestionSource::Fallback,
                eic: 0.0,
                from_safe_region: true,
            });
            return Ok(config);
        }

        let trace = self.telemetry.trace_span("suggest");
        let warm = self.opts.warm_configs.clone();
        // With a retrieval bootstrap attached, burn-in iterations skip
        // building the meta ensemble entirely — the initial design never
        // consults it, and deferring the base-surrogate fits is where the
        // cold-start speedup comes from. Without retrieval the build
        // stays unconditional so the retrieval-off path is untouched.
        let skip_ensemble = !self.opts.retrieval_configs.is_empty()
            && self
                .generator
                .in_initial_design(self.history.len(), warm.len());
        let ensemble = if skip_ensemble {
            None
        } else {
            self.build_ensemble()
        };
        let suggestion = {
            let _span = self.telemetry.span(metric::SUGGEST_LATENCY_S);
            self.generator.suggest(
                &self.history,
                context,
                &warm,
                ensemble.as_ref().map(|e| e as &dyn otune_bo::Predictor),
            )
        };
        trace.finish();
        self.telemetry.emit(
            self.round_iterations as u64,
            EventKind::SuggestionMade {
                source: suggestion.source.kind(),
                eic: suggestion.eic,
                in_safe_region: suggestion.from_safe_region,
            },
        );
        let pool_stats = self.opts.pool.stats();
        self.telemetry
            .gauge(metric::POOL_THREADS, self.opts.pool.threads() as f64);
        self.telemetry
            .gauge(metric::POOL_PARALLEL_MAPS, pool_stats.parallel_maps as f64);
        self.telemetry.gauge(
            metric::POOL_PARALLEL_TASKS,
            pool_stats.parallel_tasks as f64,
        );
        self.telemetry
            .gauge(metric::SIMD_BLOCKS, otune_linalg::simd::blocks() as f64);

        // Stopping criterion: negligible expected improvement (§3.3).
        if self.opts.ei_stop_ratio > 0.0
            && matches!(suggestion.source, SuggestionSource::Bo)
            && self.round_iterations > self.opts.n_init + 2
        {
            if let Some(best_cfg) = self.best().map(|b| b.config.clone()) {
                // EIC is computed on the log objective, so it directly
                // measures the expected *relative* improvement (§3.3's
                // "expected improvement less than a threshold, e.g. 10%").
                if suggestion.eic < self.opts.ei_stop_ratio && suggestion.from_safe_region {
                    self.telemetry.emit(
                        self.round_iterations as u64,
                        EventKind::TaskStopped {
                            reason: StopReason::EiConverged,
                        },
                    );
                    self.stopped = true;
                    self.pending = Some(Suggestion {
                        config: best_cfg.clone(),
                        source: SuggestionSource::Fallback,
                        eic: suggestion.eic,
                        from_safe_region: true,
                    });
                    return Ok(best_cfg);
                }
            }
        }

        let config = suggestion.config.clone();
        self.pending = Some(suggestion);
        Ok(config)
    }

    /// Provenance of the pending suggestion (diagnostics).
    pub fn pending_source(&self) -> Option<SuggestionSource> {
        self.pending.as_ref().map(|s| s.source)
    }

    /// Report the execution result of the pending suggestion (Step 2 of
    /// Figure 1). `runtime_s` and `resource` come from the platform;
    /// `context` must match what was passed to [`OnlineTuner::suggest`].
    pub fn observe(
        &mut self,
        config: Configuration,
        runtime_s: f64,
        resource: f64,
        context: &[f64],
    ) -> Result<(), TunerError> {
        let pending = self.pending.take().ok_or(TunerError::NoPendingSuggestion)?;
        if pending.config != config {
            self.pending = Some(pending);
            return Err(TunerError::SuggestionMismatch);
        }
        let _trace = self.telemetry.trace_span("observe");
        let objective = self.objective.eval(runtime_s, resource);

        if self.stopped {
            // Post-tuning: watch for continuous degradation (§3.3).
            let expected = self.best().map(|o| o.objective).unwrap_or(objective);
            if self.opts.restart_after > 0 && objective > expected * self.opts.degradation_factor {
                self.degraded_streak += 1;
                if self.degraded_streak >= self.opts.restart_after {
                    self.restart();
                }
            } else {
                self.degraded_streak = 0;
            }
            return Ok(());
        }

        self.history.push(Observation {
            failed: false,
            config,
            objective,
            runtime: runtime_s,
            resource,
            context: context.to_vec(),
        });
        self.round_iterations += 1;
        self.failure_streak = 0;
        Ok(())
    }

    /// Report that the pending suggestion's run *failed* (executor OOM,
    /// `T_max` kill, crashed container). `partial_runtime_s` is the time
    /// the run consumed before dying; it is *not* recorded as the
    /// observed runtime. Instead the run enters the history censored —
    /// runtime clamped to `failure_penalty × T_max` (worst-seen runtime
    /// when `T_max` is unset) and flagged `failed` — which keeps the
    /// runtime GP pessimistic there and makes the observation infeasible
    /// for the safe region, the incumbent, and the sub-space success
    /// counter (the EIC retreats instead of refitting on garbage).
    pub fn observe_failed(
        &mut self,
        config: Configuration,
        partial_runtime_s: f64,
        resource: f64,
        context: &[f64],
    ) -> Result<(), TunerError> {
        let pending = self.pending.take().ok_or(TunerError::NoPendingSuggestion)?;
        if pending.config != config {
            self.pending = Some(pending);
            return Err(TunerError::SuggestionMismatch);
        }
        let censored = self.censored_runtime(partial_runtime_s);
        self.telemetry.incr(metric::RUN_FAILURES);

        if self.stopped {
            // A failed production run is maximally degraded (§3.3's
            // restart watch applies unchanged).
            self.telemetry.emit(
                self.round_iterations as u64,
                EventKind::RunFailed {
                    partial_runtime: partial_runtime_s,
                    censored_runtime: censored,
                    streak: self.degraded_streak + 1,
                },
            );
            if self.opts.restart_after > 0 {
                self.degraded_streak += 1;
                if self.degraded_streak >= self.opts.restart_after {
                    self.restart();
                }
            }
            return Ok(());
        }

        let objective = self.objective.eval(censored, resource);
        self.failure_streak += 1;
        self.telemetry.emit(
            self.round_iterations as u64,
            EventKind::RunFailed {
                partial_runtime: partial_runtime_s,
                censored_runtime: censored,
                streak: self.failure_streak,
            },
        );
        self.history.push(Observation {
            failed: true,
            config,
            objective,
            runtime: censored,
            resource,
            context: context.to_vec(),
        });
        self.round_iterations += 1;
        Ok(())
    }

    /// The censored runtime recorded for a failed run. Deterministic in
    /// (options, history, partial runtime) so that resume replays it.
    fn censored_runtime(&self, partial_runtime_s: f64) -> f64 {
        let base = self.opts.t_max.unwrap_or_else(|| {
            self.history
                .iter()
                .map(|o| o.runtime)
                .fold(partial_runtime_s.max(1.0), f64::max)
        });
        (base * self.opts.failure_penalty.max(1.0)).max(partial_runtime_s)
    }

    /// Consecutive failed runs in the current tuning round.
    pub fn failure_streak(&self) -> usize {
        self.failure_streak
    }

    /// The last known-safe configuration: the best *feasible* observation,
    /// falling back to the space default (the manual configuration, which
    /// production ran safely before tuning began).
    fn last_known_safe(&self) -> Configuration {
        self.history
            .iter()
            .filter(|o| o.is_feasible(self.opts.t_max, self.opts.r_max))
            .min_by(|a, b| {
                a.objective
                    .partial_cmp(&b.objective)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|o| o.config.clone())
            .unwrap_or_else(|| self.space.default_configuration())
    }

    /// Seed the runhistory with an already-executed configuration (e.g.
    /// the manual configuration's production metrics). Does not consume
    /// budget.
    pub fn seed_observation(
        &mut self,
        config: Configuration,
        runtime_s: f64,
        resource: f64,
        context: &[f64],
    ) {
        let objective = self.objective.eval(runtime_s, resource);
        self.seeded_idx.push(self.history.len());
        self.history.push(Observation {
            failed: false,
            config,
            objective,
            runtime: runtime_s,
            resource,
            context: context.to_vec(),
        });
    }

    /// Force a tuning restart: the current runhistory becomes a base task
    /// for the meta ensemble, and a fresh tuning round begins (workload
    /// drift response, §3.3).
    pub fn restart(&mut self) {
        self.restarts += 1;
        self.degraded_streak = 0;
        if !self.history.is_empty() {
            self.own_records.push(TaskRecord {
                task_id: format!("self-round-{}", self.restarts),
                meta_features: Vec::new(),
                observations: std::mem::take(&mut self.history),
            });
        }
        self.stopped = false;
        self.round_iterations = 0;
        self.failure_streak = 0;
        self.seeded_idx.clear();
        // The round's history now lives under a new base-task id and the
        // target history restarts empty — begin from a clean cache.
        self.meta_cache.clear();
        let resource_fn = crate::objective::resource_fn_for(&self.space);
        self.generator = Self::make_generator(&self.space, &self.opts, resource_fn);
        self.generator.set_telemetry(self.telemetry.clone());
    }

    /// Export this task's history as a [`TaskRecord`] for the repository.
    pub fn export_record(&self, task_id: &str, meta_features: Vec<f64>) -> TaskRecord {
        TaskRecord {
            task_id: task_id.to_string(),
            meta_features,
            observations: self.history.clone(),
        }
    }

    /// Freeze the tuner's replayable state into a [`TunerSnapshot`]
    /// (crash recovery). Cheap — no surrogate or RNG internals are
    /// serialized; [`OnlineTuner::resume`] rebuilds them by replay.
    pub fn snapshot(&self, task_id: &str) -> TunerSnapshot {
        TunerSnapshot {
            task_id: task_id.to_string(),
            seed: self.opts.seed,
            budget: self.opts.budget,
            history: self.history.clone(),
            seeded_idx: self.seeded_idx.clone(),
            pending: self.pending.as_ref().map(|p| PendingSuggestion {
                config: p.config.clone(),
                source: p.source,
                eic: p.eic,
                from_safe_region: p.from_safe_region,
                context: self.pending_context.clone(),
            }),
            stopped: self.stopped,
            degraded_streak: self.degraded_streak,
            failure_streak: self.failure_streak,
            restarts: self.restarts,
            round_iterations: self.round_iterations,
            own_records: self.own_records.clone(),
        }
    }

    /// Reconstruct a tuner from a snapshot (crash recovery). The stack is
    /// deterministic given `opts`, so resume re-drives the *real* suggest
    /// path over the snapshotted history — seeded observations are pushed
    /// directly, iterated ones must regenerate the exact configuration
    /// that was recorded — yielding a tuner whose future suggestions are
    /// bitwise-identical to an uninterrupted run's.
    ///
    /// `opts` must match the options the snapshot was taken under; the
    /// fingerprint fields (`seed`, `budget`) are checked, the rest is the
    /// caller's responsibility (they come from the same deployment
    /// configuration in practice).
    pub fn resume(
        space: ConfigSpace,
        opts: TunerOptions,
        snap: &TunerSnapshot,
        telemetry: Telemetry,
    ) -> Result<Self, ResumeError> {
        let resource_fn = crate::objective::resource_fn_for(&space);
        Self::resume_with_resource_fn(space, opts, resource_fn, snap, telemetry)
    }

    /// [`OnlineTuner::resume`] with an explicit analytic resource function
    /// (must match the one the snapshotted tuner was built with).
    pub fn resume_with_resource_fn(
        space: ConfigSpace,
        opts: TunerOptions,
        resource_fn: Arc<dyn Fn(&Configuration) -> f64 + Send + Sync>,
        snap: &TunerSnapshot,
        telemetry: Telemetry,
    ) -> Result<Self, ResumeError> {
        if opts.seed != snap.seed {
            return Err(ResumeError::OptionsMismatch { field: "seed" });
        }
        if opts.budget != snap.budget {
            return Err(ResumeError::OptionsMismatch { field: "budget" });
        }
        // Replay runs silent (disabled telemetry): the original already
        // emitted these events; a resume must not double-count them.
        let mut tuner = Self::with_resource_fn(space, opts, resource_fn);
        tuner.own_records = snap.own_records.clone();
        tuner.restarts = snap.restarts;
        for (i, obs) in snap.history.iter().enumerate() {
            if snap.seeded_idx.contains(&i) {
                tuner.seeded_idx.push(tuner.history.len());
                tuner.history.push(obs.clone());
                continue;
            }
            let cfg = tuner.suggest(&obs.context)?;
            if cfg != obs.config {
                return Err(ResumeError::ReplayDivergence { at: i });
            }
            tuner.apply_replayed(obs.clone());
        }
        if tuner.round_iterations != snap.round_iterations {
            return Err(ResumeError::ReplayDivergence {
                at: snap.history.len(),
            });
        }
        // Post-stop state is not replayable from the history (post-stop
        // observations are never recorded); restore it from the snapshot
        // *before* regenerating the pending suggestion, which may have
        // come from the stopped (incumbent) branch.
        tuner.stopped = snap.stopped;
        tuner.degraded_streak = snap.degraded_streak;
        if let Some(p) = &snap.pending {
            // The replayed failure streak is the pre-suggest value, so
            // the fallback branch (which resets it) replays faithfully.
            let cfg = tuner.suggest(&p.context)?;
            if cfg != p.config {
                return Err(ResumeError::ReplayDivergence {
                    at: snap.history.len(),
                });
            }
        }
        tuner.failure_streak = snap.failure_streak;
        tuner.set_telemetry(telemetry);
        tuner.telemetry.incr(metric::RESUMES);
        tuner.telemetry.emit(
            tuner.round_iterations as u64,
            EventKind::TunerResumed {
                observations: snap.history.len(),
            },
        );
        Ok(tuner)
    }

    /// Apply one replayed iterated observation during resume: mirrors the
    /// state effects of `observe`/`observe_failed` without telemetry.
    fn apply_replayed(&mut self, obs: Observation) {
        if obs.failed {
            self.failure_streak += 1;
        } else {
            self.failure_streak = 0;
        }
        self.history.push(obs);
        self.round_iterations += 1;
        self.pending = None;
    }

    fn build_ensemble(&mut self) -> Option<EnsembleSurrogate> {
        if !self.opts.enable_meta {
            return None;
        }
        let mut bases: Vec<TaskRecord> = self.opts.base_tasks.clone();
        bases.extend(self.own_records.iter().cloned());
        if bases.is_empty() {
            return None;
        }
        // The generator's EIC works on the log objective; the ensemble's
        // member surrogates must live on the same scale.
        let log = |obs: &[Observation]| -> Vec<Observation> {
            obs.iter()
                .map(|o| Observation {
                    objective: o.objective.max(1e-9).ln(),
                    ..o.clone()
                })
                .collect()
        };
        let bases: Vec<TaskRecord> = bases
            .into_iter()
            .map(|t| TaskRecord {
                observations: log(&t.observations),
                ..t
            })
            .collect();
        EnsembleSurrogate::build_cached(
            &self.space,
            &bases,
            &log(&self.history),
            50,
            self.opts.seed,
            &mut self.meta_cache,
            &self.telemetry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otune_space::{ParamValue, Parameter};

    fn toy_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            Parameter::int("n", 1, 50, 10),
            Parameter::int("m", 1, 32, 8),
        ])
    }

    fn toy_resource(c: &Configuration) -> f64 {
        c[0].as_int().unwrap() as f64 * (1.0 + 0.5 * c[1].as_int().unwrap() as f64)
    }

    fn toy_runtime(c: &Configuration) -> f64 {
        400.0 / c[0].as_int().unwrap() as f64 + 30.0 / c[1].as_int().unwrap() as f64 + 10.0
    }

    fn make_tuner(opts: TunerOptions) -> OnlineTuner {
        OnlineTuner::with_resource_fn(toy_space(), opts, Arc::new(toy_resource))
    }

    fn drive(tuner: &mut OnlineTuner, rounds: usize) {
        for _ in 0..rounds {
            let cfg = tuner.suggest(&[]).unwrap();
            let (rt, r) = (toy_runtime(&cfg), toy_resource(&cfg));
            tuner.observe(cfg, rt, r, &[]).unwrap();
        }
    }

    #[test]
    fn improves_over_default_within_budget() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 15,
            seed: 1,
            ..Default::default()
        });
        let d = toy_space().default_configuration();
        tuner.seed_observation(d.clone(), toy_runtime(&d), toy_resource(&d), &[]);
        let initial = tuner.history()[0].objective;
        drive(&mut tuner, 15);
        let best = tuner.best().unwrap().objective;
        assert!(best < initial, "{best} !< {initial}");
        assert_eq!(tuner.history().len(), 16);
    }

    #[test]
    fn budget_exhaustion_returns_best_config() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 5,
            ..Default::default()
        });
        drive(&mut tuner, 5);
        assert!(!tuner.is_stopped());
        let best = tuner.best().unwrap().config.clone();
        let next = tuner.suggest(&[]).unwrap();
        assert!(tuner.is_stopped());
        assert_eq!(next, best, "post-budget suggestions are the incumbent");
        tuner.observe(next, 100.0, 10.0, &[]).unwrap();
        // History no longer grows post-stop.
        assert_eq!(tuner.history().len(), 5);
    }

    #[test]
    fn suggest_twice_without_observe_errors() {
        let mut tuner = make_tuner(TunerOptions::default());
        let _ = tuner.suggest(&[]).unwrap();
        assert_eq!(
            tuner.suggest(&[]).unwrap_err(),
            TunerError::PendingObservation
        );
    }

    #[test]
    fn observe_without_suggest_errors() {
        let mut tuner = make_tuner(TunerOptions::default());
        let cfg = toy_space().default_configuration();
        assert_eq!(
            tuner.observe(cfg, 1.0, 1.0, &[]).unwrap_err(),
            TunerError::NoPendingSuggestion
        );
    }

    #[test]
    fn mismatched_observation_errors_and_keeps_pending() {
        let mut tuner = make_tuner(TunerOptions::default());
        let cfg = tuner.suggest(&[]).unwrap();
        let mut other = toy_space().default_configuration();
        if other == cfg {
            other.set(0, ParamValue::Int(49));
        }
        assert_eq!(
            tuner.observe(other.clone(), 1.0, 1.0, &[]).unwrap_err(),
            TunerError::SuggestionMismatch
        );
        assert_eq!(
            tuner.observe_failed(other, 1.0, 1.0, &[]).unwrap_err(),
            TunerError::SuggestionMismatch
        );
        // The pending suggestion survived the bad reports.
        tuner.observe(cfg, 1.0, 1.0, &[]).unwrap();
        assert_eq!(tuner.history().len(), 1);
    }

    #[test]
    fn failed_runs_are_censored_and_infeasible() {
        let t_max = 100.0;
        let mut tuner = make_tuner(TunerOptions {
            t_max: Some(t_max),
            failure_penalty: 2.0,
            ..Default::default()
        });
        let cfg = tuner.suggest(&[]).unwrap();
        tuner.observe_failed(cfg, 40.0, 10.0, &[]).unwrap();
        let o = &tuner.history()[0];
        assert!(o.failed);
        assert_eq!(o.runtime, 200.0, "censored to failure_penalty × T_max");
        assert!(!o.is_feasible(Some(t_max), None));
        assert_eq!(tuner.failure_streak(), 1);
        // A clean run resets the streak.
        let cfg = tuner.suggest(&[]).unwrap();
        let (rt, r) = (toy_runtime(&cfg), toy_resource(&cfg));
        tuner.observe(cfg, rt, r, &[]).unwrap();
        assert_eq!(tuner.failure_streak(), 0);
    }

    #[test]
    fn censoring_without_t_max_uses_worst_seen_runtime() {
        let mut tuner = make_tuner(TunerOptions {
            t_max: None,
            failure_penalty: 2.0,
            ..Default::default()
        });
        let d = toy_space().default_configuration();
        tuner.seed_observation(d.clone(), 80.0, toy_resource(&d), &[]);
        let cfg = tuner.suggest(&[]).unwrap();
        tuner.observe_failed(cfg, 5.0, 1.0, &[]).unwrap();
        assert_eq!(tuner.history()[1].runtime, 160.0);
    }

    #[test]
    fn consecutive_failures_trigger_fallback_to_last_known_safe() {
        let space = toy_space();
        let d = space.default_configuration();
        let mut tuner = make_tuner(TunerOptions {
            t_max: Some(200.0),
            tau_consec: 3,
            budget: 20,
            ..Default::default()
        });
        tuner.seed_observation(d.clone(), toy_runtime(&d), toy_resource(&d), &[]);
        for _ in 0..3 {
            let cfg = tuner.suggest(&[]).unwrap();
            tuner.observe_failed(cfg, 50.0, 10.0, &[]).unwrap();
        }
        assert_eq!(tuner.failure_streak(), 3);
        let fallback = tuner.suggest(&[]).unwrap();
        assert_eq!(tuner.pending_source(), Some(SuggestionSource::Fallback));
        assert_eq!(fallback, d, "retreats to the only feasible config");
        assert_eq!(tuner.failure_streak(), 0, "streak cleared by the fallback");
        let (rt, r) = (toy_runtime(&fallback), toy_resource(&fallback));
        tuner.observe(fallback, rt, r, &[]).unwrap();
        // Tuning continues normally afterwards.
        let next = tuner.suggest(&[]).unwrap();
        assert_ne!(tuner.pending_source(), Some(SuggestionSource::Fallback));
        let (rt, r) = (toy_runtime(&next), toy_resource(&next));
        tuner.observe(next, rt, r, &[]).unwrap();
    }

    #[test]
    fn failed_incumbent_never_wins() {
        let mut tuner = make_tuner(TunerOptions {
            t_max: Some(100.0),
            ..Default::default()
        });
        let cfg = tuner.suggest(&[]).unwrap();
        // Tiny resource → censored objective could look attractive if the
        // failure flag were ignored.
        tuner.observe_failed(cfg, 1.0, 1e-6, &[]).unwrap();
        let cfg = tuner.suggest(&[]).unwrap();
        let (rt, r) = (toy_runtime(&cfg), toy_resource(&cfg));
        tuner.observe(cfg.clone(), rt, r, &[]).unwrap();
        let best = tuner.best().unwrap();
        assert!(!best.failed, "incumbent is the feasible run");
        assert_eq!(best.config, cfg);
    }

    #[test]
    fn post_stop_failures_count_toward_restart() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            restart_after: 2,
            t_max: Some(1e9),
            ..Default::default()
        });
        drive(&mut tuner, 4);
        for _ in 0..2 {
            let cfg = tuner.suggest(&[]).unwrap();
            assert!(tuner.is_stopped());
            tuner.observe_failed(cfg, 10.0, 1.0, &[]).unwrap();
        }
        assert_eq!(tuner.restarts(), 1);
        assert!(!tuner.is_stopped());
    }

    #[test]
    fn degradation_triggers_restart() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            restart_after: 3,
            degradation_factor: 1.2,
            ..Default::default()
        });
        drive(&mut tuner, 4);
        // Exhaust the budget → stopped.
        let cfg = tuner.suggest(&[]).unwrap();
        assert!(tuner.is_stopped());
        tuner.observe(cfg, 1e6, 1e6, &[]).unwrap(); // degraded run 1
        for _ in 0..2 {
            let cfg = tuner.suggest(&[]).unwrap();
            tuner.observe(cfg, 1e6, 1e6, &[]).unwrap();
        }
        assert_eq!(tuner.restarts(), 1);
        assert!(!tuner.is_stopped(), "tuning resumed after restart");
        // Old history moved into base records; a new round begins.
        assert!(tuner.history().is_empty());
    }

    #[test]
    fn healthy_post_tuning_runs_do_not_restart() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            ..Default::default()
        });
        drive(&mut tuner, 4);
        let best_rt = tuner.best().unwrap().runtime;
        let best_r = tuner.best().unwrap().resource;
        for _ in 0..6 {
            let cfg = tuner.suggest(&[]).unwrap();
            tuner.observe(cfg, best_rt, best_r, &[]).unwrap();
        }
        assert_eq!(tuner.restarts(), 0);
    }

    #[test]
    fn warm_configs_come_first() {
        let space = toy_space();
        let warm = space
            .configuration(vec![ParamValue::Int(7), ParamValue::Int(3)])
            .unwrap();
        let mut tuner = make_tuner(TunerOptions {
            warm_configs: vec![warm.clone()],
            ..Default::default()
        });
        let first = tuner.suggest(&[]).unwrap();
        assert_eq!(first, warm);
    }

    #[test]
    fn export_record_captures_history() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            ..Default::default()
        });
        drive(&mut tuner, 4);
        let rec = tuner.export_record("toy", vec![1.0, 2.0]);
        assert_eq!(rec.task_id, "toy");
        assert_eq!(rec.observations.len(), 4);
        assert_eq!(rec.meta_features, vec![1.0, 2.0]);
    }

    /// Drive `rounds` iterations, failing every run whose index is in
    /// `fail_on`, and return the full suggestion trace.
    fn drive_mixed(
        tuner: &mut OnlineTuner,
        rounds: usize,
        fail_on: &[usize],
    ) -> Vec<Configuration> {
        let mut trace = Vec::new();
        for i in 0..rounds {
            let cfg = tuner.suggest(&[]).unwrap();
            trace.push(cfg.clone());
            if fail_on.contains(&i) {
                tuner.observe_failed(cfg, 50.0, 10.0, &[]).unwrap();
            } else {
                let (rt, r) = (toy_runtime(&cfg), toy_resource(&cfg));
                tuner.observe(cfg, rt, r, &[]).unwrap();
            }
        }
        trace
    }

    fn resume_opts() -> TunerOptions {
        TunerOptions {
            budget: 12,
            t_max: Some(200.0),
            tau_consec: 3,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn resume_reproduces_uninterrupted_suggestions() {
        let d = toy_space().default_configuration();
        // The uninterrupted reference run: failures at 2, 3, 4 exercise
        // the fallback path mid-trace.
        let mut reference = make_tuner(resume_opts());
        reference.seed_observation(d.clone(), toy_runtime(&d), toy_resource(&d), &[]);
        let full = drive_mixed(&mut reference, 10, &[2, 3, 4]);

        // The interrupted run: same prefix, then "crash" and resume.
        let mut tuner = make_tuner(resume_opts());
        tuner.seed_observation(d.clone(), toy_runtime(&d), toy_resource(&d), &[]);
        let prefix = drive_mixed(&mut tuner, 6, &[2, 3, 4]);
        assert_eq!(prefix, full[..6].to_vec());
        let snap = tuner.snapshot("toy");
        drop(tuner);
        let mut resumed = OnlineTuner::resume_with_resource_fn(
            toy_space(),
            resume_opts(),
            Arc::new(toy_resource),
            &snap,
            Telemetry::disabled(),
        )
        .unwrap();
        let tail = drive_mixed(&mut resumed, 4, &[]);
        assert_eq!(tail, full[6..].to_vec(), "post-resume trace diverged");
    }

    #[test]
    fn resume_regenerates_a_pending_suggestion() {
        let mut tuner = make_tuner(resume_opts());
        drive_mixed(&mut tuner, 4, &[]);
        let cfg = tuner.suggest(&[]).unwrap();
        let snap = tuner.snapshot("toy");
        assert!(snap.pending.is_some());
        let mut resumed = OnlineTuner::resume_with_resource_fn(
            toy_space(),
            resume_opts(),
            Arc::new(toy_resource),
            &snap,
            Telemetry::disabled(),
        )
        .unwrap();
        // The in-flight run's result can be reported to the resumed tuner.
        assert_eq!(
            resumed.suggest(&[]).unwrap_err(),
            TunerError::PendingObservation
        );
        let (rt, r) = (toy_runtime(&cfg), toy_resource(&cfg));
        resumed.observe(cfg, rt, r, &[]).unwrap();
        assert_eq!(resumed.history().len(), 5);
    }

    #[test]
    fn resume_restores_post_stop_state() {
        let mut tuner = make_tuner(TunerOptions {
            budget: 4,
            restart_after: 3,
            degradation_factor: 1.2,
            seed: 3,
            ..Default::default()
        });
        drive(&mut tuner, 4);
        let cfg = tuner.suggest(&[]).unwrap(); // budget exhausted → stopped
        tuner.observe(cfg, 1e6, 1e6, &[]).unwrap(); // degraded run 1
        let snap = tuner.snapshot("toy");
        assert!(snap.stopped);
        assert_eq!(snap.degraded_streak, 1);
        let mut resumed = OnlineTuner::resume_with_resource_fn(
            toy_space(),
            TunerOptions {
                budget: 4,
                restart_after: 3,
                degradation_factor: 1.2,
                seed: 3,
                ..Default::default()
            },
            Arc::new(toy_resource),
            &snap,
            Telemetry::disabled(),
        )
        .unwrap();
        assert!(resumed.is_stopped());
        // Two more degraded runs complete the streak of 3 → restart.
        for _ in 0..2 {
            let cfg = resumed.suggest(&[]).unwrap();
            resumed.observe(cfg, 1e6, 1e6, &[]).unwrap();
        }
        assert_eq!(resumed.restarts(), 1);
        assert!(!resumed.is_stopped());
    }

    #[test]
    fn resume_rejects_mismatched_options_and_corrupt_history() {
        let mut tuner = make_tuner(resume_opts());
        drive_mixed(&mut tuner, 4, &[]);
        let snap = tuner.snapshot("toy");

        let wrong_seed = TunerOptions {
            seed: 999,
            ..resume_opts()
        };
        assert_eq!(
            OnlineTuner::resume_with_resource_fn(
                toy_space(),
                wrong_seed,
                Arc::new(toy_resource),
                &snap,
                Telemetry::disabled(),
            )
            .err(),
            Some(ResumeError::OptionsMismatch { field: "seed" })
        );

        let mut corrupt = snap.clone();
        corrupt.history[2].config.set(0, ParamValue::Int(50));
        corrupt.history[2].config.set(1, ParamValue::Int(32));
        assert_eq!(
            OnlineTuner::resume_with_resource_fn(
                toy_space(),
                resume_opts(),
                Arc::new(toy_resource),
                &corrupt,
                Telemetry::disabled(),
            )
            .err(),
            Some(ResumeError::ReplayDivergence { at: 2 })
        );
    }

    #[test]
    fn safety_reduces_constraint_violations() {
        let space = toy_space();
        let d = space.default_configuration();
        let t_max = toy_runtime(&d) * 1.2;
        let run = |enable_safety: bool, seed: u64| -> usize {
            let mut tuner = make_tuner(TunerOptions {
                budget: 18,
                t_max: Some(t_max),
                enable_safety,
                n_agd: 0,
                seed,
                ..Default::default()
            });
            tuner.seed_observation(d.clone(), toy_runtime(&d), toy_resource(&d), &[]);
            let mut violations = 0;
            for _ in 0..18 {
                let cfg = tuner.suggest(&[]).unwrap();
                let rt = toy_runtime(&cfg);
                if rt > t_max {
                    violations += 1;
                }
                let r = toy_resource(&cfg);
                tuner.observe(cfg, rt, r, &[]).unwrap();
            }
            violations
        };
        let unsafe_v: usize = (0..3).map(|s| run(false, s)).sum();
        let safe_v: usize = (0..3).map(|s| run(true, s)).sum();
        assert!(safe_v <= unsafe_v, "safety helps: {safe_v} vs {unsafe_v}");
    }
}
