//! Sink torture tests: the JSONL and ring sinks under torn writes and
//! concurrent emitters. The observability contract is that capture never
//! takes down (or blocks) the tuning path and losses are *counted*, never
//! silent — these tests drive the sinks to their failure edges and check
//! the dropped counters and the lossy reader against them.

use otune_telemetry::{
    metric, read_jsonl_lossy, Event, EventKind, JsonlSink, RingBufferSink, Telemetry,
};
use std::io::Write;
use std::sync::Arc;

fn event(seq: u64) -> Event {
    Event {
        task: format!("task-{}", seq % 7),
        seq,
        iteration: seq / 7,
        kind: EventKind::AgdStep {
            accepted: seq.is_multiple_of(2),
        },
    }
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("otune_sink_torture");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn lossy_reader_survives_torn_tail_and_mid_stream_corruption() {
    let path = temp_path("torn.jsonl");
    {
        let telemetry = Telemetry::new(Box::new(JsonlSink::create(&path).unwrap()));
        for i in 0..20u64 {
            telemetry.emit(i, EventKind::AgdStep { accepted: true });
        }
        telemetry.flush();
    }
    // Corrupt one line in the middle and tear the tail mid-record, as a
    // crash between `write` and `flush` would.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 20);
    lines[7] = "{\"task\":\"x\",\"seq\":7,".into(); // truncated JSON
    lines[13] = "not json at all".into();
    let mut rewritten = lines.join("\n");
    rewritten.push_str("\n{\"task\":\"y\""); // torn final record, no newline
    std::fs::write(&path, rewritten).unwrap();

    let (events, dropped) = read_jsonl_lossy(&path).unwrap();
    assert_eq!(events.len(), 18, "both corrupt lines and the tail skipped");
    assert_eq!(dropped, 3, "every unreadable line is counted");
    // The surviving events are intact and still ordered.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    assert!(!seqs.contains(&7) && !seqs.contains(&13));
}

#[test]
fn jsonl_sink_under_concurrent_fleet_waves_loses_nothing() {
    let path = temp_path("concurrent.jsonl");
    let telemetry = Telemetry::new(Box::new(JsonlSink::create(&path).unwrap()));
    // Eight "shard workers" interleave whole waves of emissions through
    // clones of one handle, as the fleet controller does.
    let waves = 50u64;
    let workers = 8u64;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let telemetry = telemetry.for_task(&format!("shard-{w}"));
            scope.spawn(move || {
                for i in 0..waves {
                    telemetry.emit(i, EventKind::AgdStep { accepted: true });
                    telemetry.incr(metric::FLEET_REQUESTS);
                }
            });
        }
    });
    telemetry.flush();
    let (events, torn) = read_jsonl_lossy(&path).unwrap();
    assert_eq!(torn, 0, "interleaved writers must not tear lines");
    assert_eq!(events.len(), (waves * workers) as usize);
    // The shared sequence is a total order: every seq appears exactly once.
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    assert!(seqs.iter().enumerate().all(|(i, &s)| s == i as u64));
    // Nothing was dropped, and the snapshot says so.
    let snap = telemetry.snapshot().unwrap();
    assert_eq!(snap.counters.get("events_dropped").copied().unwrap_or(0), 0);
    assert_eq!(
        snap.counters[metric::FLEET_REQUESTS],
        waves * workers,
        "metrics survive concurrent increments"
    );
}

#[test]
fn ring_sink_counts_concurrent_overwrites_instead_of_hiding_them() {
    let sink = Arc::new(RingBufferSink::new(64));
    let total = 8 * 200u64;
    std::thread::scope(|scope| {
        for w in 0..8u64 {
            let sink = Arc::clone(&sink);
            scope.spawn(move || {
                for i in 0..200u64 {
                    otune_telemetry::EventSink::record(&*sink, &event(w * 200 + i));
                }
            });
        }
    });
    assert_eq!(sink.len(), 64, "ring stays at capacity");
    assert_eq!(
        otune_telemetry::EventSink::dropped(&*sink),
        total - 64,
        "every overwritten event is counted"
    );
}

#[test]
fn snapshot_surfaces_ring_losses_as_events_dropped() {
    let (telemetry, sink) = Telemetry::ring(4);
    for i in 0..10u64 {
        telemetry.emit(i, EventKind::AgdStep { accepted: false });
    }
    assert_eq!(sink.events().len(), 4);
    let snap = telemetry.snapshot().unwrap();
    assert_eq!(snap.counters["events_dropped"], 6);
}

#[test]
fn reader_reports_unreadable_empty_segments() {
    // A file that is all noise: everything is counted, nothing parses,
    // and the call still succeeds — capture corruption is diagnosable
    // from the counts alone.
    let path = temp_path("noise.jsonl");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "garbage").unwrap();
    writeln!(f).unwrap();
    write!(f, "{{\"task\"").unwrap();
    drop(f);
    let (events, dropped) = read_jsonl_lossy(&path).unwrap();
    assert!(events.is_empty());
    // The blank line is skipped silently (not data), the two torn lines
    // are counted.
    assert_eq!(dropped, 2);
}
