//! Exporters: Chrome trace-event / Perfetto JSON for span trees, and
//! Prometheus text format for metrics snapshots.
//!
//! Both are pure functions over already-frozen data — no locks, no
//! clocks — so they can run after a campaign against recorded files
//! (`otune trace`, `otune stats --prom`) or inline at shutdown.

use crate::metrics::MetricsSnapshot;
use crate::trace::SpanRecord;
use serde::Content;
use std::fmt::Write as _;

fn map(entries: Vec<(&str, Content)>) -> Content {
    Content::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Adapter: serialize a hand-built [`Content`] tree (the vendored serde
/// has no blanket `Serialize for Content`).
struct Raw(Content);

impl serde::Serialize for Raw {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

/// Render spans as Chrome trace-event JSON (the "JSON Array Format"
/// with a `traceEvents` wrapper), loadable by `chrome://tracing`,
/// Perfetto, and Speedscope.
///
/// Each span becomes one complete (`"ph":"X"`) event; timestamps and
/// durations are microseconds per the format. The deterministic ids
/// travel in `args` so a trace stays joinable back to the JSONL stream.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let events: Vec<Content> = spans
        .iter()
        .map(|s| {
            map(vec![
                ("name", Content::Str(s.name.clone())),
                ("cat", Content::Str("otune".to_string())),
                ("ph", Content::Str("X".to_string())),
                ("ts", Content::F64(s.start_ns as f64 / 1e3)),
                ("dur", Content::F64(s.dur_ns as f64 / 1e3)),
                ("pid", Content::U64(1)),
                ("tid", Content::U64(s.worker)),
                (
                    "args",
                    map(vec![
                        ("trace_id", Content::U64(s.trace_id)),
                        ("span_id", Content::U64(s.span_id)),
                        ("parent_id", Content::U64(s.parent_id)),
                        ("task", Content::Str(s.task.clone())),
                    ]),
                ),
            ])
        })
        .collect();
    let file = map(vec![
        ("traceEvents", Content::Seq(events)),
        ("displayTimeUnit", Content::Str("ms".to_string())),
    ]);
    serde_json::to_string_pretty(&Raw(file)).expect("trace events serialize")
}

/// Sanitize a metric name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Format a float the way Prometheus expects (plain decimal, `+Inf`).
fn prom_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Render a metrics snapshot in the Prometheus text exposition format.
///
/// Counters and gauges map directly; histograms are exposed as
/// summaries (`quantile` labels plus `_sum`/`_count`) with the exact
/// extremes as companion `_min`/`_max` gauges. Names are prefixed
/// `otune_` and emitted in sorted order, so output is stable and
/// diffable.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = format!("otune_{}", prom_name(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = format!("otune_{}", prom_name(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", prom_f64(*value));
    }
    for (name, h) in &snapshot.histograms {
        let n = format!("otune_{}", prom_name(name));
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", prom_f64(v));
        }
        let _ = writeln!(out, "{n}_sum {}", prom_f64(h.sum));
        let _ = writeln!(out, "{n}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {n}_min gauge");
        let _ = writeln!(out, "{n}_min {}", prom_f64(h.min));
        let _ = writeln!(out, "# TYPE {n}_max gauge");
        let _ = writeln!(out, "{n}_max {}", prom_f64(h.max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                trace_id: 1,
                span_id: 10,
                parent_id: 0,
                name: "suggest".into(),
                task: "job-a".into(),
                worker: 0,
                start_ns: 0,
                dur_ns: 110_000_000,
            },
            SpanRecord {
                trace_id: 1,
                span_id: 11,
                parent_id: 10,
                name: "gp_fit".into(),
                task: "job-a".into(),
                worker: 2,
                start_ns: 5_000,
                dur_ns: 60_000_000,
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let out = chrome_trace_json(&spans());
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert_eq!(e.get("pid").unwrap().as_u64(), Some(1));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
        }
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("suggest"));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(110_000.0)); // µs
        assert_eq!(events[1].get("tid").unwrap().as_u64(), Some(2));
        let args = events[1].get("args").unwrap();
        assert_eq!(args.get("parent_id").unwrap().as_u64(), Some(10));
        assert_eq!(args.get("task").unwrap().as_str(), Some("job-a"));
    }

    #[test]
    fn prometheus_text_covers_all_metric_types() {
        let reg = MetricsRegistry::new();
        reg.add("run_failures", 3);
        reg.set_gauge("subspace_k", 12.0);
        for v in [0.1, 0.2, 0.4] {
            reg.observe("suggest_latency_s", v);
        }
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE otune_run_failures counter"));
        assert!(text.contains("otune_run_failures 3"));
        assert!(text.contains("# TYPE otune_subspace_k gauge"));
        assert!(text.contains("otune_subspace_k 12"));
        assert!(text.contains("# TYPE otune_suggest_latency_s summary"));
        assert!(text.contains("otune_suggest_latency_s{quantile=\"0.5\"}"));
        assert!(text.contains("otune_suggest_latency_s{quantile=\"0.99\"}"));
        assert!(text.contains("otune_suggest_latency_s_count 3"));
        assert!(text.contains("otune_suggest_latency_s_min 0.1"));
        assert!(text.contains("otune_suggest_latency_s_max 0.4"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in line: {line}"
            );
            assert!(parts.next().unwrap().starts_with("otune_"), "{line}");
        }
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("suggest_latency_s"), "suggest_latency_s");
        assert_eq!(prom_name("bad-name.v2"), "bad_name_v2");
        assert_eq!(prom_name("9lives"), "_9lives");
    }
}
