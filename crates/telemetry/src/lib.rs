//! Observability for the tuning service: a structured event log, a
//! lightweight metrics registry, and timing spans.
//!
//! The crate is deliberately free of tuning logic — it sits below
//! `otune-bo`, `otune-meta`, and `otune-core` in the dependency graph so
//! every layer can emit events through a shared [`Telemetry`] handle.
//!
//! Design goals:
//!
//! * **Zero overhead when off.** [`Telemetry::disabled`] carries no
//!   allocation; every emit/observe call is a single `Option` branch and
//!   spans never read the clock.
//! * **Typed events.** [`Event`] and [`EventKind`] serialize with serde,
//!   one JSON object per line in the file sink, so external tooling can
//!   replay a tuning session (`otune events`).
//! * **Shared across tasks.** Sinks and the registry are lock-guarded
//!   (`parking_lot`); the controller clones one handle per task via
//!   [`Telemetry::for_task`], which relabels events without duplicating
//!   state.

mod event;
mod metrics;
mod sink;
mod span;

pub use event::{Event, EventKind, ResizeDirection, StopReason, SuggestionKind};
pub use metrics::{metric, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{read_jsonl, EventSink, JsonlSink, NullSink, RingBufferSink};
pub use span::Span;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    sink: Box<dyn EventSink>,
    metrics: MetricsRegistry,
    /// Monotonic sequence stamped on every event, across all tasks
    /// sharing this handle.
    seq: AtomicU64,
}

/// A cloneable handle to the telemetry pipeline.
///
/// The default handle is [`Telemetry::disabled`]: all operations are
/// no-ops and spans never touch the clock, so instrumented hot paths pay
/// only an `Option` check (see the `table3_overhead` bench).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    /// Task label stamped on emitted events.
    task: Option<Arc<str>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("task", &self.task)
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// An enabled handle writing events to `sink`.
    pub fn new(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                metrics: MetricsRegistry::new(),
                seq: AtomicU64::new(0),
            })),
            task: None,
        }
    }

    /// Convenience: an enabled handle over an in-memory ring buffer.
    /// Returns the handle and the sink for later inspection.
    pub fn ring(capacity: usize) -> (Self, Arc<RingBufferSink>) {
        let sink = Arc::new(RingBufferSink::new(capacity));
        (Telemetry::new(Box::new(Arc::clone(&sink))), sink)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle sharing this pipeline but stamping `task` on its events.
    pub fn for_task(&self, task: &str) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            task: Some(Arc::from(task)),
        }
    }

    /// The task label stamped on events emitted through this handle.
    pub fn task(&self) -> &str {
        self.task.as_deref().unwrap_or("")
    }

    /// Emit an event at the given tuning iteration.
    pub fn emit(&self, iteration: u64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let event = Event {
                task: self.task().to_string(),
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                iteration,
                kind,
            };
            inner.sink.record(&event);
        }
    }

    /// Increment a counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add to a counter.
    pub fn add(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, by);
        }
    }

    /// Set a gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(name, value);
        }
    }

    /// Record a value into a histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, value);
        }
    }

    /// Start a timing span; the elapsed seconds are recorded into the
    /// `name` histogram when the returned guard drops. Disabled handles
    /// return an inert guard that never reads the clock.
    pub fn span(&self, name: &'static str) -> Span {
        Span::start(self.clone(), name, self.is_enabled())
    }

    /// Snapshot the metrics registry (None when disabled).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Flush the underlying sink (e.g. the JSONL file buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.emit(0, EventKind::TaskRegistered { n_params: 3 });
        t.incr("x");
        t.observe("y", 1.0);
        {
            let _span = t.span("z");
        }
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn events_carry_task_and_monotonic_seq() {
        let (t, sink) = Telemetry::ring(16);
        let a = t.for_task("job-a");
        let b = t.for_task("job-b");
        a.emit(0, EventKind::TaskRegistered { n_params: 2 });
        b.emit(0, EventKind::TaskRegistered { n_params: 4 });
        a.emit(
            1,
            EventKind::SuggestionMade {
                source: SuggestionKind::Bo,
                eic: 0.25,
                in_safe_region: true,
            },
        );
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].task, "job-a");
        assert_eq!(events[1].task, "job-b");
        assert_eq!(events[2].task, "job-a");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "shared handle stamps one sequence");
    }

    #[test]
    fn metrics_flow_through_handle() {
        let (t, _sink) = Telemetry::ring(4);
        t.incr("fallback_suggestions");
        t.add("fallback_suggestions", 2);
        t.gauge("subspace_k", 7.0);
        t.observe("suggest_latency_s", 0.5);
        {
            let _span = t.span("gp_fit_s");
        }
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters["fallback_suggestions"], 3);
        assert_eq!(snap.gauges["subspace_k"], 7.0);
        assert_eq!(snap.histograms["suggest_latency_s"].count, 1);
        assert_eq!(snap.histograms["gp_fit_s"].count, 1);
    }
}
