//! Observability for the tuning service: a structured event log, a
//! lightweight metrics registry, and timing spans.
//!
//! The crate is deliberately free of tuning logic — it sits below
//! `otune-bo`, `otune-meta`, and `otune-core` in the dependency graph so
//! every layer can emit events through a shared [`Telemetry`] handle.
//!
//! Design goals:
//!
//! * **Zero overhead when off.** [`Telemetry::disabled`] carries no
//!   allocation; every emit/observe call is a single `Option` branch and
//!   spans never read the clock.
//! * **Typed events.** [`Event`] and [`EventKind`] serialize with serde,
//!   one JSON object per line in the file sink, so external tooling can
//!   replay a tuning session (`otune events`).
//! * **Shared across tasks.** Sinks and the registry are lock-guarded
//!   (`parking_lot`); the controller clones one handle per task via
//!   [`Telemetry::for_task`], which relabels events without duplicating
//!   state.

mod durable;
mod event;
mod export;
mod metrics;
mod sink;
mod span;
mod trace;

pub use durable::{BatchedWriter, SyncPolicy, WriterMetrics, CRASH_FSYNC_PREFIX, SYNC_ENV};
pub use event::{Event, EventKind, ResizeDirection, StopReason, SuggestionKind};
pub use export::{chrome_trace_json, prometheus_text};
pub use metrics::{metric, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{read_jsonl, read_jsonl_lossy, EventSink, JsonlSink, NullSink, RingBufferSink};
pub use span::Span;
pub use trace::{
    attribute, spans_from_events, structural_key, trace_key, AttributionReport, PhaseRow,
    SpanRecord, TraceCtx, DEFAULT_TRACE_CAPACITY,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use trace::{OpenSpan, TraceState};

struct Inner {
    sink: Box<dyn EventSink>,
    metrics: MetricsRegistry,
    /// Monotonic sequence stamped on every event, across all tasks
    /// sharing this handle.
    seq: AtomicU64,
    /// Hierarchical tracing state; present only on traced handles.
    trace: Option<TraceState>,
}

/// A cloneable handle to the telemetry pipeline.
///
/// The default handle is [`Telemetry::disabled`]: all operations are
/// no-ops and spans never touch the clock, so instrumented hot paths pay
/// only an `Option` check (see the `table3_overhead` bench).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    /// Task label stamped on emitted events.
    task: Option<Arc<str>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("task", &self.task)
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// An enabled handle writing events to `sink`.
    pub fn new(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                metrics: MetricsRegistry::new(),
                seq: AtomicU64::new(0),
                trace: None,
            })),
            task: None,
        }
    }

    /// An enabled handle with hierarchical tracing on. `trace_seed` is
    /// folded into every derived trace/span id, so the same seeded
    /// workload replays to a structurally identical trace.
    pub fn new_traced(sink: Box<dyn EventSink>, trace_seed: u64) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                metrics: MetricsRegistry::new(),
                seq: AtomicU64::new(0),
                trace: Some(TraceState::new(trace_seed, DEFAULT_TRACE_CAPACITY)),
            })),
            task: None,
        }
    }

    /// Convenience: an enabled handle over an in-memory ring buffer.
    /// Returns the handle and the sink for later inspection.
    pub fn ring(capacity: usize) -> (Self, Arc<RingBufferSink>) {
        let sink = Arc::new(RingBufferSink::new(capacity));
        (Telemetry::new(Box::new(Arc::clone(&sink))), sink)
    }

    /// Convenience: a traced handle over an in-memory ring buffer.
    pub fn ring_traced(capacity: usize, trace_seed: u64) -> (Self, Arc<RingBufferSink>) {
        let sink = Arc::new(RingBufferSink::new(capacity));
        (
            Telemetry::new_traced(Box::new(Arc::clone(&sink)), trace_seed),
            sink,
        )
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle records hierarchical trace spans.
    pub fn is_tracing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.trace.is_some())
    }

    /// A handle sharing this pipeline but stamping `task` on its events.
    pub fn for_task(&self, task: &str) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            task: Some(Arc::from(task)),
        }
    }

    /// The task label stamped on events emitted through this handle.
    pub fn task(&self) -> &str {
        self.task.as_deref().unwrap_or("")
    }

    /// Emit an event at the given tuning iteration.
    pub fn emit(&self, iteration: u64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let event = Event {
                task: self.task().to_string(),
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                iteration,
                kind,
            };
            inner.sink.record(&event);
        }
    }

    /// Increment a counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add to a counter.
    pub fn add(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, by);
        }
    }

    /// Set a gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(name, value);
        }
    }

    /// Record a value into a histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, value);
        }
    }

    /// Start a timing span; the elapsed seconds are recorded into the
    /// `name` histogram when the returned guard drops. Disabled handles
    /// return an inert guard that never reads the clock.
    pub fn span(&self, name: &'static str) -> Span {
        Span::start(self.clone(), name, self.is_enabled())
    }

    /// Open a hierarchical trace span: child of the thread's current
    /// span, or a new trace root when none is active. Non-tracing
    /// handles return an inert guard — no clock read, no allocation.
    ///
    /// Sibling spans opened sequentially on one thread get sequential
    /// deterministic ids; *parallel* siblings must use
    /// [`Telemetry::trace_span_keyed`] so their ids do not depend on
    /// scheduling order.
    pub fn trace_span(&self, name: &'static str) -> TraceSpan {
        self.trace_open(name, None)
    }

    /// Open a trace span whose id is pinned by a caller-chosen key
    /// (task hash, shard index, candidate index) — required for spans
    /// opened concurrently under one parent.
    pub fn trace_span_keyed(&self, name: &'static str, key: u64) -> TraceSpan {
        self.trace_open(name, Some(key))
    }

    fn trace_open(&self, name: &'static str, key: Option<u64>) -> TraceSpan {
        let open = self
            .inner
            .as_ref()
            .and_then(|inner| inner.trace.as_ref())
            .map(|trace| trace.open(name, key));
        TraceSpan {
            telemetry: self.clone(),
            name,
            open,
        }
    }

    /// Capture the current span context for adoption on another thread
    /// (pool workers). None when not tracing or no span is active.
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.trace.as_ref())
            .and_then(|trace| trace.current())
    }

    /// Adopt a captured context as this thread's current span; spans
    /// opened while the guard lives parent under it. Pass the ctx from
    /// [`Telemetry::trace_ctx`] across the thread boundary by value.
    pub fn trace_adopt(&self, ctx: Option<TraceCtx>) -> TraceGuard {
        let ctx = match (&self.inner, ctx) {
            (Some(inner), Some(ctx)) if inner.trace.is_some() => {
                inner.trace.as_ref().unwrap().adopt(&ctx);
                Some(ctx)
            }
            _ => None,
        };
        TraceGuard {
            telemetry: self.clone(),
            ctx,
        }
    }

    /// All buffered span records (empty when not tracing).
    pub fn traces(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.trace.as_ref())
            .map(|trace| trace.spans())
            .unwrap_or_default()
    }

    /// Spans lost to the bounded trace buffer.
    pub fn traces_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .and_then(|inner| inner.trace.as_ref())
            .map(|trace| trace.dropped())
            .unwrap_or(0)
    }

    /// Snapshot the metrics registry (None when disabled). Dropped-event
    /// and dropped-span counts are folded in as counters so losses are
    /// always reported, never silently swallowed.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|inner| {
            let mut snap = inner.metrics.snapshot();
            snap.counters
                .insert(metric::EVENTS_DROPPED.to_string(), inner.sink.dropped());
            snap.counters.insert(
                metric::SPANS_DROPPED.to_string(),
                inner.trace.as_ref().map(|t| t.dropped()).unwrap_or(0),
            );
            snap
        })
    }

    /// Flush the underlying sink (e.g. the JSONL file buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// RAII guard for a hierarchical trace span. On drop the span closes:
/// its record lands in the trace buffer and a [`EventKind::SpanClosed`]
/// event flows through the sink, so JSONL streams carry the full trace.
///
/// A guard from a non-tracing handle is inert: it holds no timestamps
/// and never reads the clock.
#[must_use = "a trace span closes when dropped; binding it to `_` drops it immediately"]
pub struct TraceSpan {
    telemetry: Telemetry,
    name: &'static str,
    open: Option<OpenSpan>,
}

impl TraceSpan {
    /// Whether this guard will record a span (false on non-tracing
    /// handles) — the zero-overhead contract hook for benches.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }

    /// This span's deterministic id (0 when not recording).
    pub fn span_id(&self) -> u64 {
        self.open.as_ref().map(|o| o.span_id).unwrap_or(0)
    }

    /// End the span explicitly (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            if let Some(inner) = &self.telemetry.inner {
                if let Some(trace) = &inner.trace {
                    let rec = trace.close(&open, self.name, self.telemetry.task());
                    self.telemetry.emit(
                        0,
                        EventKind::SpanClosed {
                            trace_id: rec.trace_id,
                            span_id: rec.span_id,
                            parent_id: rec.parent_id,
                            name: rec.name,
                            worker: rec.worker,
                            start_ns: rec.start_ns,
                            dur_ns: rec.dur_ns,
                        },
                    );
                }
            }
        }
    }
}

/// RAII guard for an adopted cross-thread span context; un-adopts on
/// drop. Returned by [`Telemetry::trace_adopt`].
pub struct TraceGuard {
    telemetry: Telemetry,
    ctx: Option<TraceCtx>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            if let Some(inner) = &self.telemetry.inner {
                if let Some(trace) = &inner.trace {
                    trace.unadopt(&ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.emit(0, EventKind::TaskRegistered { n_params: 3 });
        t.incr("x");
        t.observe("y", 1.0);
        {
            let _span = t.span("z");
        }
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn events_carry_task_and_monotonic_seq() {
        let (t, sink) = Telemetry::ring(16);
        let a = t.for_task("job-a");
        let b = t.for_task("job-b");
        a.emit(0, EventKind::TaskRegistered { n_params: 2 });
        b.emit(0, EventKind::TaskRegistered { n_params: 4 });
        a.emit(
            1,
            EventKind::SuggestionMade {
                source: SuggestionKind::Bo,
                eic: 0.25,
                in_safe_region: true,
            },
        );
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].task, "job-a");
        assert_eq!(events[1].task, "job-b");
        assert_eq!(events[2].task, "job-a");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "shared handle stamps one sequence");
    }

    #[test]
    fn trace_spans_nest_into_a_hierarchy() {
        let (t, sink) = Telemetry::ring_traced(64, 42);
        {
            let root = t.trace_span("suggest");
            assert!(root.is_recording());
            {
                let _fit = t.trace_span("gp_fit");
                let _chol = t.trace_span("chol_factor");
                // Scope end drops chol, then fit — proper nesting.
            }
            let _eic = t.trace_span("eic");
        }
        let spans = t.traces();
        assert_eq!(spans.len(), 4);
        let by_name: std::collections::BTreeMap<&str, &SpanRecord> =
            spans.iter().map(|s| (s.name.as_str(), s)).collect();
        let root = by_name["suggest"];
        assert_eq!(root.parent_id, 0, "root has no parent");
        assert_eq!(by_name["gp_fit"].parent_id, root.span_id);
        assert_eq!(by_name["chol_factor"].parent_id, by_name["gp_fit"].span_id);
        assert_eq!(by_name["eic"].parent_id, root.span_id);
        assert!(spans.iter().all(|s| s.trace_id == root.trace_id));
        // Every span also flowed through the sink as a SpanClosed event.
        let closed = sink
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanClosed { .. }))
            .count();
        assert_eq!(closed, 4);
        assert_eq!(spans_from_events(&sink.events()).len(), 4);
    }

    #[test]
    fn traces_are_structurally_deterministic() {
        let run = || {
            let (t, _sink) = Telemetry::ring_traced(64, 7);
            {
                let _root = t.trace_span("suggest");
                let _fit = t.trace_span_keyed("hyper_candidate", 3);
            }
            {
                let _root = t.trace_span("suggest");
            }
            t.traces()
        };
        let a = run();
        let b = run();
        assert_eq!(structural_key(&a), structural_key(&b));
        // The two roots are distinct traces.
        assert_eq!(
            a.iter()
                .map(|s| s.trace_id)
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            2
        );
    }

    #[test]
    fn adopted_context_parents_across_threads() {
        let (t, _sink) = Telemetry::ring_traced(64, 9);
        let root = t.trace_span("fleet_wave");
        let root_id = root.span_id();
        let ctx = t.trace_ctx();
        assert!(ctx.is_some());
        let handle = {
            let t = t.clone();
            std::thread::spawn(move || {
                let _guard = t.trace_adopt(ctx);
                let _shard = t.trace_span_keyed("shard", 5);
            })
        };
        handle.join().unwrap();
        drop(root);
        let spans = t.traces();
        let shard = spans.iter().find(|s| s.name == "shard").unwrap();
        assert_eq!(shard.parent_id, root_id);
    }

    #[test]
    fn untraced_and_disabled_handles_record_no_spans() {
        let (enabled, _sink) = Telemetry::ring(4);
        let disabled = Telemetry::disabled();
        for t in [&enabled, &disabled] {
            assert!(!t.is_tracing());
            let span = t.trace_span("suggest");
            assert!(!span.is_recording(), "no clock, no record");
            assert!(t.trace_ctx().is_none());
            drop(span);
            assert!(t.traces().is_empty());
        }
    }

    #[test]
    fn snapshot_reports_dropped_events_and_spans() {
        let (t, _sink) = Telemetry::ring(2);
        for i in 0..5 {
            t.emit(i, EventKind::AgdStep { accepted: true });
        }
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters[metric::EVENTS_DROPPED], 3);
        assert_eq!(snap.counters[metric::SPANS_DROPPED], 0);
    }

    #[test]
    fn metrics_flow_through_handle() {
        let (t, _sink) = Telemetry::ring(4);
        t.incr("fallback_suggestions");
        t.add("fallback_suggestions", 2);
        t.gauge("subspace_k", 7.0);
        t.observe("suggest_latency_s", 0.5);
        {
            let _span = t.span("gp_fit_s");
        }
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters["fallback_suggestions"], 3);
        assert_eq!(snap.gauges["subspace_k"], 7.0);
        assert_eq!(snap.histograms["suggest_latency_s"].count, 1);
        assert_eq!(snap.histograms["gp_fit_s"].count, 1);
    }
}
