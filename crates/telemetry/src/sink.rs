//! Event sinks: where emitted [`Event`]s go.

use crate::event::Event;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Destination for emitted events. Implementations must be safe to
/// share across tasks; the [`Telemetry`](crate::Telemetry) handle calls
/// `record` behind a shared `Arc`.
pub trait EventSink: Send + Sync {
    /// Record one event.
    fn record(&self, event: &Event);

    /// Flush any buffered events (no-op by default).
    fn flush(&self) {}

    /// Events this sink has lost — overwritten by a full ring, or
    /// swallowed on I/O failure. Telemetry never takes down the tuning
    /// path, so losses are counted instead of raised; the handle folds
    /// this into its metrics snapshot as `events_dropped`.
    fn dropped(&self) -> u64 {
        0
    }
}

impl<S: EventSink + ?Sized> EventSink for Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }

    fn dropped(&self) -> u64 {
        (**self).dropped()
    }
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Capacity-bounded in-memory sink; once full, the oldest events are
/// dropped. Useful for tests and for keeping a recent-history window
/// in long-running services.
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl EventSink for RingBufferSink {
    fn record(&self, event: &Event) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Buffered JSONL file sink: one JSON object per line, flushed on
/// [`flush`](EventSink::flush) and on drop. Replay with [`read_jsonl`]
/// or `otune events`.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    dropped: AtomicU64,
}

impl JsonlSink {
    /// Create (truncate) `path` and write events to it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            dropped: AtomicU64::new(0),
        })
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        // Serialization of the event model cannot fail; I/O errors are
        // deliberately swallowed — telemetry must never take down the
        // tuning path — but every swallowed event is counted.
        match serde_json::to_string(event) {
            Ok(line) => {
                let mut w = self.writer.lock();
                if writeln!(w, "{line}").is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

/// Read an event stream written by [`JsonlSink`], oldest first.
/// Blank lines are skipped; malformed lines are an error.
pub fn read_jsonl<P: AsRef<Path>>(path: P) -> io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e:?}", lineno + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Read an event stream tolerating torn or corrupt lines (a crash
/// mid-write leaves a truncated tail; concurrent writers can interleave
/// garbage). Parseable events are returned oldest first together with
/// the number of skipped lines — mirrors `SnapshotLog`'s crash-recovery
/// contract: damage is reported, never silently swallowed.
pub fn read_jsonl_lossy<P: AsRef<Path>>(path: P) -> io::Result<(Vec<Event>, u64)> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Event>(&line) {
            Ok(event) => events.push(event),
            Err(_) => skipped += 1,
        }
    }
    Ok((events, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u64) -> Event {
        Event {
            task: "t".into(),
            seq,
            iteration: seq,
            kind: EventKind::AgdStep {
                accepted: seq.is_multiple_of(2),
            },
        }
    }

    #[test]
    fn ring_buffer_wraps_dropping_oldest() {
        let sink = RingBufferSink::new(3);
        assert!(sink.is_empty());
        for seq in 0..5 {
            sink.record(&ev(seq));
        }
        assert_eq!(sink.len(), 3);
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest two were dropped");
    }

    #[test]
    fn zero_capacity_ring_still_holds_latest() {
        let sink = RingBufferSink::new(0);
        sink.record(&ev(0));
        sink.record(&ev(1));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].seq, 1);
    }

    #[test]
    fn jsonl_round_trips_through_a_file() {
        let path = std::env::temp_dir().join("otune-telemetry-sink-test.jsonl");
        let written: Vec<Event> = (0..4).map(ev).collect();
        {
            let sink = JsonlSink::create(&path).unwrap();
            for e in &written {
                sink.record(e);
            }
            // Dropping the sink flushes the buffer.
        }
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, written);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ring_buffer_counts_overwrites_as_dropped() {
        let sink = RingBufferSink::new(3);
        for seq in 0..5 {
            sink.record(&ev(seq));
        }
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn lossy_reader_skips_torn_lines_and_counts_them() {
        let path = std::env::temp_dir().join("otune-telemetry-torn.jsonl");
        let good = serde_json::to_string(&ev(0)).unwrap();
        let torn = &good[..good.len() / 2]; // crash mid-write
        std::fs::write(&path, format!("{good}\nnot json\n{good}\n{torn}")).unwrap();
        let (events, skipped) = read_jsonl_lossy(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(skipped, 2, "garbage line + torn tail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_jsonl_rejects_malformed_lines() {
        let path = std::env::temp_dir().join("otune-telemetry-bad.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
