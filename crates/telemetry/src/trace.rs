//! Hierarchical tracing: replayable span trees over the tuning request
//! path, plus latency attribution.
//!
//! A *trace* is one top-level operation — a fleet wave, a standalone
//! `suggest`, an `observe` — decomposed into a tree of named spans
//! (wave → shard → task → tuner step → generator phase → surrogate fit →
//! Cholesky/EIC kernels). Design constraints, in order:
//!
//! * **Deterministic identity.** Trace, span, and parent IDs are derived
//!   from a seed, the span's name, and its position in the tree — never
//!   from the wall clock or allocation addresses — so the *structure* of a
//!   trace is bitwise-identical across runs, pool widths, and shard
//!   counts. Only the timing fields (`start_ns`/`dur_ns`) and the worker
//!   id vary; [`structural_key`] strips exactly those.
//! * **Zero overhead when off.** A handle without tracing returns an
//!   inert guard: no clock read, no allocation, no thread-local touch
//!   beyond one branch.
//! * **Thread-safe parenting.** Within a thread, parentage follows the
//!   call stack via a thread-local span stack. Across threads (pool
//!   workers), the caller captures a [`TraceCtx`] and the worker adopts
//!   it; parallel siblings must use [`Telemetry::trace_span_keyed`] with a
//!   caller-chosen key (task hash, shard index, candidate index) so their
//!   IDs do not depend on scheduling order.
//!
//! Closed spans are buffered in-memory (bounded, with a dropped-span
//! counter) and also emitted as [`EventKind::SpanClosed`] events through
//! the sink, so a JSONL event stream written by `tune --events` carries
//! the full trace for `otune trace` / `otune top`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default bound on buffered spans per pipeline.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One closed span. Identity fields (`trace_id`, `span_id`, `parent_id`,
/// `name`, `task`) are deterministic; `worker`, `start_ns`, and `dur_ns`
/// are measurements and vary run to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// Parent span id; 0 for trace roots.
    pub parent_id: u64,
    /// Phase name (e.g. `suggest`, `gp_fit`, `chol_factor`).
    pub name: String,
    /// Task label of the emitting handle ("" for fleet-level spans).
    pub task: String,
    /// Dense id of the OS thread that ran the span (excluded from
    /// structural identity).
    pub worker: u64,
    /// Start, in nanoseconds since the pipeline's trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A captured span context, for handing parentage across threads.
#[derive(Debug, Clone)]
pub struct TraceCtx {
    pub(crate) pipeline: u64,
    pub(crate) trace_id: u64,
    pub(crate) span_id: u64,
}

/// Per-pipeline tracing state, attached to an enabled `Telemetry` handle
/// on request.
pub(crate) struct TraceState {
    /// Seed folded into every derived id.
    seed: u64,
    /// Identity of the owning pipeline (disambiguates thread-local stack
    /// entries when several pipelines coexist in one process).
    pipeline: u64,
    /// Monotonic origin for `start_ns` (read only while tracing).
    epoch: Instant,
    /// Root counter: sequential roots get deterministic trace ids.
    roots: AtomicU64,
    buf: Mutex<Vec<SpanRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// Process-wide source of pipeline identities (small and collision-free,
/// unlike pointer reuse after drops).
static NEXT_PIPELINE: AtomicU64 = AtomicU64::new(1);

/// Dense per-thread worker ids for the `worker` field.
static NEXT_WORKER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static WORKER_ID: u64 = NEXT_WORKER.fetch_add(1, Ordering::Relaxed);
    /// The active span stack of this thread: innermost last.
    static SPAN_STACK: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

fn worker_id() -> u64 {
    WORKER_ID.with(|w| *w)
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash step.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string (span names).
fn fnv_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derive a child span id from its deterministic coordinates. Ids are
/// never 0 (0 is the "no parent" sentinel).
fn span_id(trace_id: u64, parent_id: u64, name: &str, key: u64) -> u64 {
    mix(trace_id ^ parent_id.rotate_left(17) ^ fnv_str(name) ^ mix(key)).max(1)
}

impl TraceState {
    pub(crate) fn new(seed: u64, capacity: usize) -> Self {
        TraceState {
            seed,
            pipeline: NEXT_PIPELINE.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            roots: AtomicU64::new(0),
            buf: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn spans(&self) -> Vec<SpanRecord> {
        self.buf.lock().clone()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Current thread's innermost span of *this* pipeline, if any.
    pub(crate) fn current(&self) -> Option<TraceCtx> {
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|c| c.pipeline == self.pipeline)
                .cloned()
        })
    }

    /// Open a span: child of the thread's current span when one exists,
    /// else a new trace root. `key` pins the id for parallel siblings;
    /// `None` uses a per-root sequence derived from the root counter (an
    /// opened root) or, for nested spans, the child's birth order is
    /// irrelevant because same-thread nesting is sequential — we fold a
    /// per-thread sibling counter kept on the stack entry instead.
    pub(crate) fn open(&self, name: &'static str, key: Option<u64>) -> OpenSpan {
        let (trace_id, parent_id, id) = match self.current() {
            Some(parent) => {
                let k = key.unwrap_or_else(|| next_sibling(self.pipeline, parent.span_id));
                (
                    parent.trace_id,
                    parent.span_id,
                    span_id(parent.trace_id, parent.span_id, name, k),
                )
            }
            None => {
                let k = key.unwrap_or_else(|| self.roots.fetch_add(1, Ordering::Relaxed));
                let trace_id = mix(self.seed ^ fnv_str(name) ^ mix(k)).max(1);
                (trace_id, 0, span_id(trace_id, 0, name, k))
            }
        };
        SPAN_STACK.with(|s| {
            s.borrow_mut().push(TraceCtx {
                pipeline: self.pipeline,
                trace_id,
                span_id: id,
            })
        });
        OpenSpan {
            trace_id,
            span_id: id,
            parent_id,
            start: self.epoch.elapsed().as_nanos() as u64,
            begun: Instant::now(),
        }
    }

    /// Close a span opened by [`TraceState::open`]: pop the stack entry
    /// and buffer the record.
    pub(crate) fn close(&self, open: &OpenSpan, name: &'static str, task: &str) -> SpanRecord {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // The span being closed is this thread's innermost entry of
            // the pipeline (guards are strictly nested within a thread).
            if let Some(pos) = stack
                .iter()
                .rposition(|c| c.pipeline == self.pipeline && c.span_id == open.span_id)
            {
                stack.remove(pos);
            }
        });
        clear_siblings(self.pipeline, open.span_id);
        let record = SpanRecord {
            trace_id: open.trace_id,
            span_id: open.span_id,
            parent_id: open.parent_id,
            name: name.to_string(),
            task: task.to_string(),
            worker: worker_id(),
            start_ns: open.start,
            dur_ns: open.begun.elapsed().as_nanos() as u64,
        };
        let mut buf = self.buf.lock();
        if buf.len() < self.capacity {
            buf.push(record.clone());
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        record
    }

    /// Push an adopted context (cross-thread parentage).
    pub(crate) fn adopt(&self, ctx: &TraceCtx) {
        SPAN_STACK.with(|s| s.borrow_mut().push(ctx.clone()));
    }

    /// Pop an adopted context.
    pub(crate) fn unadopt(&self, ctx: &TraceCtx) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|c| c.pipeline == ctx.pipeline && c.span_id == ctx.span_id)
            {
                stack.remove(pos);
            }
        });
    }
}

// Sibling counters for *unkeyed* child spans, per (pipeline, parent).
//
// Kept thread-local: unkeyed children are only deterministic when opened
// sequentially on one thread (the common nested-call case). Parallel
// siblings must pass an explicit key. Cleared when the parent closes so
// repeated parents (same keyed id in a later trace) restart at 0.
thread_local! {
    static SIBLINGS: RefCell<BTreeMap<(u64, u64), u64>> = const { RefCell::new(BTreeMap::new()) };
}

fn next_sibling(pipeline: u64, parent: u64) -> u64 {
    SIBLINGS.with(|s| {
        let mut map = s.borrow_mut();
        let c = map.entry((pipeline, parent)).or_insert(0);
        let v = *c;
        *c += 1;
        v
    })
}

fn clear_siblings(pipeline: u64, parent: u64) {
    SIBLINGS.with(|s| {
        s.borrow_mut().remove(&(pipeline, parent));
    });
}

/// Book-keeping for an open span (held by the RAII guard in `lib.rs`).
pub(crate) struct OpenSpan {
    pub(crate) trace_id: u64,
    pub(crate) span_id: u64,
    pub(crate) parent_id: u64,
    start: u64,
    begun: Instant,
}

// ---------------------------------------------------------------------------
// Attribution
// ---------------------------------------------------------------------------

/// Aggregated timing of one phase (span name) across a span set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Exclusive nanoseconds: inclusive minus time spent in child spans.
    pub exclusive_ns: u64,
}

/// Latency attribution over a set of spans: exclusive time per phase.
///
/// The exclusive times of all phases sum exactly to the root spans' total
/// wall-clock (`wall_ns`), modulo untraced gaps — this is what turns
/// "suggest = 110 ms" into "62 ms kernel assembly, 31 ms hyper search, …".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Distinct traces in the span set.
    pub traces: u64,
    /// Total nanoseconds across root spans (spans with no parent in the
    /// set).
    pub wall_ns: u64,
    /// Per-phase rows, largest exclusive time first.
    pub rows: Vec<PhaseRow>,
}

impl AttributionReport {
    /// Sum of exclusive nanoseconds across all phases.
    pub fn exclusive_sum_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.exclusive_ns).sum()
    }
}

/// Roll a span set up into exclusive time per phase.
///
/// A span's exclusive time is its duration minus the duration of its
/// direct children (clamped at 0 against timer jitter). Spans whose
/// parent is missing from the set (dropped by the buffer bound, or
/// filtered upstream) are treated as roots.
pub fn attribute(spans: &[SpanRecord]) -> AttributionReport {
    use std::collections::{HashMap, HashSet};
    let ids: HashSet<(u64, u64)> = spans.iter().map(|s| (s.trace_id, s.span_id)).collect();
    let mut child_ns: HashMap<(u64, u64), u64> = HashMap::new();
    for s in spans {
        if s.parent_id != 0 && ids.contains(&(s.trace_id, s.parent_id)) {
            *child_ns.entry((s.trace_id, s.parent_id)).or_insert(0) += s.dur_ns;
        }
    }
    let mut rows: BTreeMap<&str, PhaseRow> = BTreeMap::new();
    let mut traces: HashSet<u64> = HashSet::new();
    let mut wall_ns = 0u64;
    for s in spans {
        traces.insert(s.trace_id);
        let is_root = s.parent_id == 0 || !ids.contains(&(s.trace_id, s.parent_id));
        if is_root {
            wall_ns += s.dur_ns;
        }
        let children = child_ns.get(&(s.trace_id, s.span_id)).copied().unwrap_or(0);
        let row = rows.entry(s.name.as_str()).or_insert_with(|| PhaseRow {
            name: s.name.clone(),
            count: 0,
            total_ns: 0,
            exclusive_ns: 0,
        });
        row.count += 1;
        row.total_ns += s.dur_ns;
        row.exclusive_ns += s.dur_ns.saturating_sub(children);
    }
    let mut rows: Vec<PhaseRow> = rows.into_values().collect();
    rows.sort_by(|a, b| {
        b.exclusive_ns
            .cmp(&a.exclusive_ns)
            .then(a.name.cmp(&b.name))
    });
    AttributionReport {
        traces: traces.len() as u64,
        wall_ns,
        rows,
    }
}

/// Derive a deterministic span key from a string — the canonical way to
/// pin ids for parallel siblings keyed by name (task labels, model
/// names) rather than by index.
pub fn trace_key(s: &str) -> u64 {
    fnv_str(s)
}

/// Extract span records from an event stream: every
/// [`EventKind::SpanClosed`](crate::EventKind::SpanClosed) event,
/// stamped with its event's task label. This is how `otune trace`
/// reconstructs a trace from a recorded JSONL file.
pub fn spans_from_events(events: &[crate::Event]) -> Vec<SpanRecord> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            crate::EventKind::SpanClosed {
                trace_id,
                span_id,
                parent_id,
                name,
                worker,
                start_ns,
                dur_ns,
            } => Some(SpanRecord {
                trace_id: *trace_id,
                span_id: *span_id,
                parent_id: *parent_id,
                name: name.clone(),
                task: e.task.clone(),
                worker: *worker,
                start_ns: *start_ns,
                dur_ns: *dur_ns,
            }),
            _ => None,
        })
        .collect()
}

/// The deterministic identity of a span set: every field except the
/// measurements (`worker`, `start_ns`, `dur_ns`), sorted canonically.
/// Two runs of the same seeded workload — at any `OTUNE_THREADS` or
/// `OTUNE_SHARDS` — produce equal structural keys.
pub fn structural_key(spans: &[SpanRecord]) -> Vec<(u64, u64, u64, String, String)> {
    let mut key: Vec<_> = spans
        .iter()
        .map(|s| {
            (
                s.trace_id,
                s.span_id,
                s.parent_id,
                s.name.clone(),
                s.task.clone(),
            )
        })
        .collect();
    key.sort();
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, id: u64, parent: u64, name: &str, dur: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: name.into(),
            task: String::new(),
            worker: 0,
            start_ns: 0,
            dur_ns: dur,
        }
    }

    #[test]
    fn span_ids_are_deterministic_and_nonzero() {
        let a = span_id(7, 0, "suggest", 0);
        let b = span_id(7, 0, "suggest", 0);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(span_id(7, 0, "suggest", 1), a, "key distinguishes");
        assert_ne!(span_id(7, 0, "observe", 0), a, "name distinguishes");
        assert_ne!(span_id(8, 0, "suggest", 0), a, "trace distinguishes");
    }

    #[test]
    fn attribution_decomposes_exclusive_time() {
        // root(100) -> fit(60) -> chol(25); root -> eic(30)
        let spans = vec![
            rec(1, 10, 0, "suggest", 100),
            rec(1, 11, 10, "gp_fit", 60),
            rec(1, 12, 11, "chol_factor", 25),
            rec(1, 13, 10, "eic", 30),
        ];
        let report = attribute(&spans);
        assert_eq!(report.traces, 1);
        assert_eq!(report.wall_ns, 100);
        let by_name: BTreeMap<&str, &PhaseRow> =
            report.rows.iter().map(|r| (r.name.as_str(), r)).collect();
        assert_eq!(by_name["suggest"].exclusive_ns, 10); // 100 - 60 - 30
        assert_eq!(by_name["gp_fit"].exclusive_ns, 35); // 60 - 25
        assert_eq!(by_name["chol_factor"].exclusive_ns, 25);
        assert_eq!(by_name["eic"].exclusive_ns, 30);
        // Exclusive times sum exactly to the root wall-clock.
        assert_eq!(report.exclusive_sum_ns(), report.wall_ns);
        // Sorted by exclusive descending.
        assert_eq!(report.rows[0].name, "gp_fit");
    }

    #[test]
    fn orphaned_spans_count_as_roots() {
        let spans = vec![rec(1, 11, 10, "gp_fit", 60)]; // parent 10 missing
        let report = attribute(&spans);
        assert_eq!(report.wall_ns, 60);
        assert_eq!(report.rows[0].exclusive_ns, 60);
    }

    #[test]
    fn structural_key_ignores_measurements() {
        let mut a = rec(1, 10, 0, "suggest", 100);
        let mut b = rec(1, 10, 0, "suggest", 999);
        a.worker = 3;
        b.worker = 7;
        b.start_ns = 12345;
        assert_eq!(structural_key(&[a]), structural_key(&[b]));
    }
}
