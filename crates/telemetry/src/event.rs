//! The typed event model: everything notable that happens inside the
//! tuning service, serializable as one JSON object per event.

use serde::{Deserialize, Serialize};

/// One telemetry event, stamped with its task and position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The tuning task the event belongs to.
    pub task: String,
    /// Monotonic sequence number across all tasks sharing a handle;
    /// total order of the event stream.
    pub seq: u64,
    /// Tuning iteration the event occurred in (0 for lifecycle events
    /// preceding the first iteration).
    pub iteration: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Provenance of a suggested configuration. Mirrors the core crate's
/// `SuggestionSource` without depending on it (telemetry sits below
/// core in the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuggestionKind {
    /// Transferred from a similar task.
    WarmStart,
    /// Blended from corpus neighbors by the k-NN retrieval index.
    Retrieval,
    /// Low-discrepancy initial design.
    InitialDesign,
    /// Approximate gradient descent step.
    Agd,
    /// EIC maximization over the safe sub-space.
    Bo,
    /// Conservative fallback.
    Fallback,
}

/// Which way a sub-space resize moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResizeDirection {
    /// `K` increased (consecutive successes widen the search).
    Grow,
    /// `K` decreased (consecutive failures focus the search).
    Shrink,
}

/// Why a task stopped tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The iteration budget is exhausted.
    BudgetExhausted,
    /// Expected improvement fell below the stopping threshold.
    EiConverged,
}

/// The event vocabulary of the tuning service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A task registered with the controller.
    TaskRegistered {
        /// Size of the task's configuration space.
        n_params: usize,
    },
    /// Warm-start configurations were injected from similar tasks.
    WarmStartInjected {
        /// How many configurations were transferred.
        n_configs: usize,
        /// How many source tasks they came from.
        n_sources: usize,
    },
    /// The generator produced a suggestion.
    SuggestionMade {
        /// Which mechanism produced it.
        source: SuggestionKind,
        /// EIC value at the choice (0 for non-BO sources).
        eic: f64,
        /// Whether the choice came from inside the GP safe region.
        in_safe_region: bool,
    },
    /// An execution result was reported back.
    ObservationReported {
        /// Measured runtime in seconds.
        runtime: f64,
        /// Measured resource consumption.
        resource: f64,
        /// Combined objective value.
        objective: f64,
        /// Whether the run violated `T_max`/`R_max`.
        constraint_violated: bool,
    },
    /// The adaptive sub-space changed size.
    SubspaceResized {
        /// The new size `K`.
        k: usize,
        /// Which way it moved.
        direction: ResizeDirection,
    },
    /// An AGD step was proposed (and either taken or vetoed).
    AgdStep {
        /// Whether the proposal survived the safety/descent checks.
        accepted: bool,
    },
    /// A surrogate model was (re)fitted.
    SurrogateFitted {
        /// Which model ("runtime_gp", "objective_gp", ...).
        model: String,
        /// Observations it was fitted on.
        n_obs: usize,
    },
    /// The task stopped tuning and now serves its incumbent.
    TaskStopped {
        /// Why it stopped.
        reason: StopReason,
    },
    /// A production run failed (OOM, `T_max` kill) and was recorded as a
    /// censored observation.
    RunFailed {
        /// Partial runtime reported by the platform, in seconds.
        partial_runtime: f64,
        /// The censored (penalty) runtime recorded in the history.
        censored_runtime: f64,
        /// Length of the current consecutive-failure streak.
        streak: usize,
    },
    /// `τ_consec` consecutive failures: the tuner retreats to the last
    /// known-safe configuration.
    FallbackTriggered {
        /// The streak length that tripped the fallback.
        streak: usize,
    },
    /// Tuner state was reconstructed from a snapshot.
    TunerResumed {
        /// Observations replayed from the snapshot.
        observations: usize,
    },
    /// A tuning campaign started under the job engine.
    JobStarted {
        /// Tasks registered in the campaign.
        n_tasks: usize,
        /// Waves the campaign will run.
        budget: usize,
    },
    /// A tuning campaign was reconstructed from its journal.
    JobResumed {
        /// Wave the campaign resumed at.
        wave_cursor: u64,
        /// Completed waves re-driven from journal events.
        replayed_waves: u64,
        /// Torn or corrupt journal lines skipped during the load.
        torn_lines: u64,
    },
    /// A tuning campaign paused cleanly (checkpoint written).
    JobPaused {
        /// Wave the campaign paused at.
        wave_cursor: u64,
    },
    /// A tuning campaign finished its reduce phase.
    JobCompleted {
        /// Waves the campaign ran.
        waves: u64,
        /// Tasks that ended in the dead-letter queue.
        dead_lettered: usize,
    },
    /// The job engine completed one map-phase wave.
    WaveCompleted {
        /// The wave index (0-based).
        wave: u64,
        /// Runs that completed cleanly.
        n_success: usize,
        /// Runs that failed (OOM, `T_max` kill).
        n_failed: usize,
    },
    /// A failed task execution was scheduled for retry.
    RetryScheduled {
        /// Consecutive-failure attempt number (1-based).
        attempt: usize,
        /// Exponential-backoff delay recorded for the retry, seconds.
        backoff_s: f64,
    },
    /// A task exhausted `max_retries` and moved to the dead-letter queue.
    ItemDeadLettered {
        /// The wave the final failure happened in.
        wave: u64,
        /// Consecutive failed attempts accumulated.
        attempts: usize,
    },
    /// A campaign checkpoint was appended to the job journal.
    CheckpointCreated {
        /// Wave cursor captured by the checkpoint.
        wave_cursor: u64,
    },
    /// Campaign state was restored from a journal checkpoint.
    CheckpointLoaded {
        /// Wave cursor the checkpoint restored.
        wave_cursor: u64,
    },
    /// A hierarchical trace span closed. Identity fields are
    /// deterministic (seeded, never wall-clock-derived); `worker`,
    /// `start_ns`, and `dur_ns` are measurements.
    SpanClosed {
        /// Trace the span belongs to.
        trace_id: u64,
        /// This span's deterministic id.
        span_id: u64,
        /// Parent span id (0 for trace roots).
        parent_id: u64,
        /// Phase name (e.g. `suggest`, `chol_factor`).
        name: String,
        /// Dense id of the thread that ran the span.
        worker: u64,
        /// Start, nanoseconds since the pipeline's trace epoch.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
}

impl EventKind {
    /// A short stable label for filtering (`otune events --kind`).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::TaskRegistered { .. } => "TaskRegistered",
            EventKind::WarmStartInjected { .. } => "WarmStartInjected",
            EventKind::SuggestionMade { .. } => "SuggestionMade",
            EventKind::ObservationReported { .. } => "ObservationReported",
            EventKind::SubspaceResized { .. } => "SubspaceResized",
            EventKind::AgdStep { .. } => "AgdStep",
            EventKind::SurrogateFitted { .. } => "SurrogateFitted",
            EventKind::TaskStopped { .. } => "TaskStopped",
            EventKind::RunFailed { .. } => "RunFailed",
            EventKind::FallbackTriggered { .. } => "FallbackTriggered",
            EventKind::TunerResumed { .. } => "TunerResumed",
            EventKind::JobStarted { .. } => "JobStarted",
            EventKind::JobResumed { .. } => "JobResumed",
            EventKind::JobPaused { .. } => "JobPaused",
            EventKind::JobCompleted { .. } => "JobCompleted",
            EventKind::WaveCompleted { .. } => "WaveCompleted",
            EventKind::RetryScheduled { .. } => "RetryScheduled",
            EventKind::ItemDeadLettered { .. } => "ItemDeadLettered",
            EventKind::CheckpointCreated { .. } => "CheckpointCreated",
            EventKind::CheckpointLoaded { .. } => "CheckpointLoaded",
            EventKind::SpanClosed { .. } => "SpanClosed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                task: "t".into(),
                seq: 0,
                iteration: 0,
                kind: EventKind::TaskRegistered { n_params: 30 },
            },
            Event {
                task: "t".into(),
                seq: 1,
                iteration: 0,
                kind: EventKind::WarmStartInjected {
                    n_configs: 3,
                    n_sources: 2,
                },
            },
            Event {
                task: "t".into(),
                seq: 2,
                iteration: 4,
                kind: EventKind::SuggestionMade {
                    source: SuggestionKind::InitialDesign,
                    eic: 0.0,
                    in_safe_region: true,
                },
            },
            Event {
                task: "t".into(),
                seq: 3,
                iteration: 4,
                kind: EventKind::ObservationReported {
                    runtime: 120.5,
                    resource: 800.0,
                    objective: 310.4,
                    constraint_violated: false,
                },
            },
            Event {
                task: "t".into(),
                seq: 4,
                iteration: 5,
                kind: EventKind::SubspaceResized {
                    k: 12,
                    direction: ResizeDirection::Grow,
                },
            },
            Event {
                task: "t".into(),
                seq: 5,
                iteration: 9,
                kind: EventKind::AgdStep { accepted: false },
            },
            Event {
                task: "t".into(),
                seq: 6,
                iteration: 9,
                kind: EventKind::SurrogateFitted {
                    model: "runtime_gp".into(),
                    n_obs: 9,
                },
            },
            Event {
                task: "t".into(),
                seq: 7,
                iteration: 20,
                kind: EventKind::TaskStopped {
                    reason: StopReason::BudgetExhausted,
                },
            },
            Event {
                task: "t".into(),
                seq: 8,
                iteration: 11,
                kind: EventKind::RunFailed {
                    partial_runtime: 55.0,
                    censored_runtime: 240.0,
                    streak: 2,
                },
            },
            Event {
                task: "t".into(),
                seq: 9,
                iteration: 12,
                kind: EventKind::FallbackTriggered { streak: 3 },
            },
            Event {
                task: "t".into(),
                seq: 10,
                iteration: 13,
                kind: EventKind::TunerResumed { observations: 13 },
            },
            Event {
                task: "job".into(),
                seq: 11,
                iteration: 0,
                kind: EventKind::JobStarted {
                    n_tasks: 8,
                    budget: 12,
                },
            },
            Event {
                task: "job".into(),
                seq: 12,
                iteration: 0,
                kind: EventKind::JobResumed {
                    wave_cursor: 4,
                    replayed_waves: 2,
                    torn_lines: 1,
                },
            },
            Event {
                task: "job".into(),
                seq: 13,
                iteration: 0,
                kind: EventKind::JobPaused { wave_cursor: 6 },
            },
            Event {
                task: "job".into(),
                seq: 14,
                iteration: 0,
                kind: EventKind::JobCompleted {
                    waves: 12,
                    dead_lettered: 1,
                },
            },
            Event {
                task: "job".into(),
                seq: 15,
                iteration: 3,
                kind: EventKind::WaveCompleted {
                    wave: 3,
                    n_success: 7,
                    n_failed: 1,
                },
            },
            Event {
                task: "t".into(),
                seq: 16,
                iteration: 3,
                kind: EventKind::RetryScheduled {
                    attempt: 2,
                    backoff_s: 2.0,
                },
            },
            Event {
                task: "t".into(),
                seq: 17,
                iteration: 5,
                kind: EventKind::ItemDeadLettered {
                    wave: 5,
                    attempts: 3,
                },
            },
            Event {
                task: "job".into(),
                seq: 18,
                iteration: 4,
                kind: EventKind::CheckpointCreated { wave_cursor: 4 },
            },
            Event {
                task: "job".into(),
                seq: 19,
                iteration: 0,
                kind: EventKind::CheckpointLoaded { wave_cursor: 4 },
            },
            Event {
                task: "t".into(),
                seq: 20,
                iteration: 14,
                kind: EventKind::SpanClosed {
                    trace_id: 0xdead_beef,
                    span_id: 42,
                    parent_id: 0,
                    name: "suggest".into(),
                    worker: 1,
                    start_ns: 1_000,
                    dur_ns: 110_000_000,
                },
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        for event in sample_events() {
            let line = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(back, event, "round trip failed for {line}");
        }
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = sample_events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "TaskRegistered",
                "WarmStartInjected",
                "SuggestionMade",
                "ObservationReported",
                "SubspaceResized",
                "AgdStep",
                "SurrogateFitted",
                "TaskStopped",
                "RunFailed",
                "FallbackTriggered",
                "TunerResumed",
                "JobStarted",
                "JobResumed",
                "JobPaused",
                "JobCompleted",
                "WaveCompleted",
                "RetryScheduled",
                "ItemDeadLettered",
                "CheckpointCreated",
                "CheckpointLoaded",
                "SpanClosed",
            ]
        );
    }

    #[test]
    fn json_layout_is_externally_tagged() {
        let event = &sample_events()[2];
        let line = serde_json::to_string(event).unwrap();
        assert!(line.contains("\"SuggestionMade\""), "{line}");
        assert!(
            line.contains("\"source\": \"InitialDesign\"")
                || line.contains("\"source\":\"InitialDesign\""),
            "{line}"
        );
    }
}
