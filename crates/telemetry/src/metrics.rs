//! Lightweight metrics: counters, gauges, and fixed-bucket histograms
//! with serializable snapshots.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Canonical metric names used across the tuning service.
pub mod metric {
    /// Histogram: wall-clock seconds per `suggest` call.
    pub const SUGGEST_LATENCY_S: &str = "suggest_latency_s";
    /// Histogram: wall-clock seconds per GP fit.
    pub const GP_FIT_S: &str = "gp_fit_s";
    /// Histogram: EIC evaluations per acquisition maximization.
    pub const EIC_EVALS_PER_ITER: &str = "eic_evals_per_iter";
    /// Counter: candidates rejected by the GP safe region.
    pub const SAFE_REGION_REJECTIONS: &str = "safe_region_rejections";
    /// Counter: fallback suggestions served.
    pub const FALLBACK_SUGGESTIONS: &str = "fallback_suggestions";
    /// Counter: warm-start configurations transferred into tasks.
    pub const WARM_START_HITS: &str = "warm_start_hits";
    /// Gauge: current adaptive sub-space size `K`.
    pub const SUBSPACE_K: &str = "subspace_k";
    /// Gauge: worker threads targeted by the tuner's pool.
    pub const POOL_THREADS: &str = "pool_threads";
    /// Gauge: cumulative parallel maps executed by the tuner's pool.
    pub const POOL_PARALLEL_MAPS: &str = "pool_parallel_maps";
    /// Gauge: cumulative items processed by parallel pool maps.
    pub const POOL_PARALLEL_TASKS: &str = "pool_parallel_tasks";
    /// Counter: Cholesky jitter retries paid by fitted surrogates.
    pub const CHOL_JITTER_RETRIES: &str = "chol_jitter_retries";
    /// Counter: surrogate reused as-is (history fingerprint unchanged).
    pub const SURROGATE_CACHE_HITS: &str = "surrogate_cache_hits";
    /// Counter: surrogate cache invalidated (history edited, transform
    /// changed, or no cached fit) — a full fit ran.
    pub const SURROGATE_CACHE_MISSES: &str = "surrogate_cache_misses";
    /// Counter: observations absorbed by O(n²) incremental updates.
    pub const SURROGATE_INCREMENTAL_UPDATES: &str = "surrogate_incremental_updates";
    /// Counter: full refactorizations at fixed hyperparameters (the
    /// `OTUNE_INCREMENTAL=0` baseline path plus jitter invalidations).
    pub const SURROGATE_FULL_REFITS: &str = "surrogate_full_refits";
    /// Counter: full hyperparameter re-searches (scheduled or
    /// LML-degradation triggered).
    pub const GP_HYPER_SEARCHES: &str = "gp_hyper_searches";
    /// Counter: frozen base-task surrogates served from the meta cache.
    pub const META_BASE_CACHE_HITS: &str = "meta_base_cache_hits";
    /// Counter: frozen base-task surrogates fitted (first sight of a
    /// task, or its observations changed).
    pub const META_BASE_CACHE_MISSES: &str = "meta_base_cache_misses";
    /// Counter: progressive-validation weight folds served from the
    /// meta memo instead of being refitted.
    pub const META_LOO_MEMO_HITS: &str = "meta_loo_memo_hits";
    /// Counter: production runs reported as failed (OOM, `T_max` kill)
    /// and recorded as censored observations.
    pub const RUN_FAILURES: &str = "run_failures";
    /// Counter: failure-streak fallbacks to the last known-safe
    /// configuration (`τ_consec` consecutive failed runs).
    pub const FALLBACKS_TRIGGERED: &str = "fallbacks_triggered";
    /// Counter: tuner state reconstructions from a snapshot.
    pub const RESUMES: &str = "resumes";
    /// Gauge: shards the fleet controller hashes its task map into
    /// (`OTUNE_SHARDS`).
    pub const FLEET_SHARDS: &str = "fleet_shards";
    /// Gauge: tasks currently registered with the fleet controller.
    pub const FLEET_TASKS: &str = "fleet_tasks";
    /// Counter: batched request/report waves executed.
    pub const FLEET_WAVES: &str = "fleet_waves";
    /// Counter: per-task suggestions served through batched waves.
    pub const FLEET_REQUESTS: &str = "fleet_requests";
    /// Counter: per-task results absorbed through batched waves.
    pub const FLEET_REPORTS: &str = "fleet_reports";
    /// Histogram: wall-clock seconds per batched fleet wave.
    pub const FLEET_WAVE_S: &str = "fleet_wave_s";
    /// Counter: base-task surrogates served from the fleet-wide shared
    /// meta store (fitted once by some task, reused by the rest).
    pub const SHARED_META_HITS: &str = "shared_meta_hits";
    /// Counter: base-task surrogates the shared meta store had to fit.
    pub const SHARED_META_MISSES: &str = "shared_meta_misses";
    /// Counter: pairwise surrogate distances served from the shared
    /// meta store's fingerprint-keyed memo.
    pub const SHARED_DIST_HITS: &str = "shared_dist_hits";
    /// Counter: pairwise surrogate distances computed and memoized.
    pub const SHARED_DIST_MISSES: &str = "shared_dist_misses";
    /// Counter: scheduled similarity-model refits executed by the
    /// fleet controller.
    pub const SIMILARITY_REFITS: &str = "similarity_refits";
    /// Counter: warm-start injections served from the cached similarity
    /// model without retraining.
    pub const SIMILARITY_REUSES: &str = "similarity_reuses";
    /// Counter: suggest iterations where the local-subset sparse GP
    /// replaced the exact surrogate (history past the sparse threshold).
    pub const SUBSET_GP_ACTIVATIONS: &str = "subset_gp_activations";
    /// Gauge: cumulative 4-lane blocks executed by the SIMD-style
    /// linalg/kernel paths (0 when `OTUNE_SIMD=0` forces scalar).
    pub const SIMD_BLOCKS: &str = "simd_blocks";
    /// Counter: zero-execution first suggestions served from the corpus
    /// retrieval index (a neighbor cleared the similarity threshold).
    pub const RETRIEVAL_HITS: &str = "retrieval_hits";
    /// Counter: retrieval lookups against an empty or unusable corpus
    /// (no record shares the query's feature width).
    pub const RETRIEVAL_MISSES: &str = "retrieval_misses";
    /// Counter: retrieval lookups where no neighbor cleared the
    /// similarity threshold — the tuner fell back to low-discrepancy
    /// initial design.
    pub const RETRIEVAL_FALLBACKS: &str = "retrieval_fallbacks";
    /// Gauge: records currently held by the attached tuning corpus.
    pub const CORPUS_RECORDS: &str = "corpus_records";
    /// Counter: map-phase waves completed by the job engine.
    pub const JOB_WAVES: &str = "job_waves";
    /// Counter: retries scheduled by the job engine after failed runs.
    pub const JOB_RETRIES: &str = "job_retries";
    /// Counter: tasks moved to the dead-letter queue after exhausting
    /// `max_retries` consecutive failures.
    pub const JOB_DEAD_LETTERS: &str = "job_dead_letters";
    /// Counter: campaign checkpoints appended to job journals.
    pub const JOB_CHECKPOINTS: &str = "job_checkpoints";
    /// Counter: campaign reconstructions from a job journal.
    pub const JOB_RESUMES: &str = "job_resumes";
    /// Counter: torn or corrupt JSONL journal lines skipped by lossy
    /// loads (snapshot logs and job journals).
    pub const JOURNAL_TORN_TAILS: &str = "journal_torn_tails";
    /// Counter: group-commit batches flushed by batched journal writers
    /// (one batch may cover many appended lines).
    pub const JOURNAL_BATCHES: &str = "journal_batches";
    /// Counter: `sync_data` calls paid by batched journal writers.
    pub const JOURNAL_FSYNCS: &str = "journal_fsyncs";
    /// Counter: payload bytes written through batched journal writers.
    pub const JOURNAL_BYTES: &str = "journal_bytes";
    /// Counter: serialized bytes of delta checkpoint events appended to
    /// job journals.
    pub const CHECKPOINT_DELTA_BYTES: &str = "checkpoint_delta_bytes";
    /// Counter: serialized bytes of full checkpoint events appended to
    /// job journals.
    pub const CHECKPOINT_FULL_BYTES: &str = "checkpoint_full_bytes";
    /// Counter: buffered tuning-corpus flushes (each one `sync_data`
    /// covering a batch of appended records).
    pub const CORPUS_FLUSHES: &str = "corpus_flushes";
    /// Counter: events lost by the sink (ring overwrites, I/O failures).
    /// Folded into every snapshot so losses are reported, never silent.
    pub const EVENTS_DROPPED: &str = "events_dropped";
    /// Counter: trace spans lost to the bounded trace buffer.
    pub const SPANS_DROPPED: &str = "spans_dropped";
}

/// Number of histogram buckets: 9 decades from 1e-7, 8 buckets per
/// decade, plus an overflow bucket.
const N_BUCKETS: usize = 9 * 8 + 1;

/// Lower edge of the first bucket; values at or below it land in
/// bucket 0.
const FIRST_EDGE: f64 = 1e-7;

/// Fixed-bucket histogram over `(0, +inf)`, log-spaced.
///
/// Buckets span nine decades starting at `1e-7` with eight buckets per
/// decade — fine enough that interpolated quantiles of timing data are
/// within a few percent, small enough to snapshot cheaply. Exact
/// minimum and maximum are tracked separately.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Upper edge of bucket `i` (the last bucket is unbounded).
fn bucket_edge(i: usize) -> f64 {
    FIRST_EDGE * 10f64.powf((i + 1) as f64 / 8.0)
}

/// Lower edge of bucket `i` (bucket 0 is open below).
fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        FIRST_EDGE * 10f64.powf(i as f64 / 8.0)
    }
}

fn bucket_index(value: f64) -> usize {
    if value <= FIRST_EDGE {
        return 0;
    }
    // log10(value / FIRST_EDGE) * 8 buckets per decade.
    let idx = ((value / FIRST_EDGE).log10() * 8.0).floor() as usize;
    idx.min(N_BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate quantile `q` in `[0, 1]`, linearly interpolated
    /// within the covering bucket; exact min/max anchor the ends.
    /// Returns 0 for an empty histogram.
    ///
    /// Interpolation matters at bucket boundaries: a rank that lands as
    /// the first value of a bucket no longer jumps to the bucket's upper
    /// edge — it sits near the lower edge, proportional to how deep into
    /// the bucket the rank falls.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate within bucket `i`: the rank is the
                // `(rank - seen)`-th of its `c` values.
                let frac = (rank - seen) as f64 / c as f64;
                let lo = bucket_lower(i);
                let hi = if i == N_BUCKETS - 1 {
                    // The overflow bucket is unbounded; anchor on max.
                    self.max
                } else {
                    bucket_edge(i)
                };
                // Clamp into the observed range so single-bucket
                // histograms report sane quantiles.
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Freeze into a serializable summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            mean: if self.count > 0 {
                self.sum / self.count as f64
            } else {
                0.0
            },
            min: if self.count > 0 { self.min } else { 0.0 },
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: if self.count > 0 { self.max } else { 0.0 },
        }
    }
}

/// Serializable summary of one histogram.
///
/// `min` and `p99` default to 0 on deserialization so snapshots written
/// before they existed (older `.metrics.json` sidecars) still load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Exact minimum.
    #[serde(default)]
    pub min: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    #[serde(default)]
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

/// Serializable snapshot of the whole registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of counters, gauges, and histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registry>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add to a counter (creates it at 0).
    pub fn add(&self, name: &str, by: u64) {
        let mut reg = self.inner.lock();
        *reg.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_string(), value);
    }

    /// Record a histogram value.
    pub fn observe(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Freeze the registry into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.lock();
        MetricsSnapshot {
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform_data_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // 0.001 .. 1.0
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        assert!((p50 / 0.5 - 1.0).abs() < 0.35, "p50 = {p50}");
        assert!((p95 / 0.95 - 1.0).abs() < 0.35, "p95 = {p95}");
        assert_eq!(h.quantile(1.0), 1.0);
        assert_eq!(h.quantile(0.0), 0.001);
    }

    #[test]
    fn interpolated_quantiles_beat_bucket_edges() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0);
        }
        // With in-bucket interpolation the error budget shrinks well
        // below the old clamp-to-upper-edge behaviour (~9% bucket width).
        for (q, expect) in [(0.25, 0.25), (0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let got = h.quantile(q);
            assert!(
                (got / expect - 1.0).abs() < 0.10,
                "q={q}: got {got}, expect ~{expect}"
            );
        }
    }

    #[test]
    fn snapshot_reports_exact_min_and_p99() {
        let mut h = Histogram::new();
        for i in 1..=200 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 200.0);
        assert!(s.p99 >= s.p95, "p99 {} < p95 {}", s.p99, s.p95);
        assert!((s.p99 / 198.0 - 1.0).abs() < 0.15, "p99 = {}", s.p99);
    }

    #[test]
    fn old_snapshots_without_min_p99_still_deserialize() {
        // A sidecar written before min/p99 existed.
        let old = r#"{"count":3,"sum":0.6,"mean":0.2,"p50":0.2,"p95":0.3,"max":0.3}"#;
        let s: HistogramSnapshot = serde_json::from_str(old).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.0, "missing min defaults");
        assert_eq!(s.p99, 0.0, "missing p99 defaults");
    }

    #[test]
    fn single_value_histogram_is_degenerate() {
        let mut h = Histogram::new();
        h.record(0.25);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 0.25);
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p95, 0.25);
        assert!((s.mean - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn extreme_values_clamp_into_end_buckets() {
        let mut h = Histogram::new();
        h.record(1e-12); // below the first edge
        h.record(1e9); // beyond the last edge
        h.record(-3.0); // negative → bucket 0
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
        assert_eq!(h.snapshot().max, 1e9);
    }

    #[test]
    fn registry_aggregates_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.add("c", 2);
        reg.add("c", 3);
        reg.set_gauge("g", 1.5);
        reg.set_gauge("g", 2.5);
        for v in [0.1, 0.2, 0.3] {
            reg.observe("h", v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2.5);
        assert_eq!(snap.histograms["h"].count, 3);
        // Snapshot serializes and round-trips.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
