//! Shared group-commit writer for append-only JSONL durability surfaces.
//!
//! Three surfaces persist line-oriented JSON with crash tolerance: the
//! job journal (`otune-jobs`), the snapshot log (`otune-core`), and the
//! tuning corpus (`otune-meta`). Before this module each paid one
//! `write` + `sync_data` per line — at fleet scale the fsync, not the
//! tuning math, bounds wave throughput. [`BatchedWriter`] gives all
//! three one code path: appends land in an in-memory batch buffer and a
//! single `sync_data` covers the whole batch when it flushes.
//!
//! The [`SyncPolicy`] decides when a flush happens:
//!
//! | policy      | flush on append          | survives `kill -9`            |
//! |-------------|--------------------------|-------------------------------|
//! | `Every`     | every line (legacy)      | every acked append            |
//! | `Batch(n)`  | every `n` buffered lines | last flushed batch boundary   |
//! | `Barrier`   | never — barriers only    | last explicit [`barrier`]     |
//!
//! Under every policy an explicit [`BatchedWriter::barrier`] drains the
//! buffer and fsyncs, so callers can guarantee "this entry is durable
//! now" at semantic boundaries (checkpoints, pause, completion)
//! regardless of how lazy the steady-state policy is. Buffered-but-
//! unflushed lines live in user space: a crash (`abort`, `kill -9`)
//! loses exactly the unacked suffix and nothing before it.
//!
//! [`barrier`]: BatchedWriter::barrier

use crate::Telemetry;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Environment variable selecting the journal sync policy:
/// `every` | `batch:N` | `barrier`.
pub const SYNC_ENV: &str = "OTUNE_JOURNAL_SYNC";

/// Environment variable arming a crash (`std::process::abort`) right
/// after the N-th completed `sync_data` of a [`BatchedWriter`] — kill -9
/// semantics at an exact fsync boundary. Value: `fsync:N`. Parsed by the
/// job engine, armed via [`BatchedWriter::arm_crash_at_fsync`].
pub const CRASH_FSYNC_PREFIX: &str = "fsync:";

/// When a group-commit writer pays a `sync_data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// One fsync per appended line — the legacy cadence and the default.
    #[default]
    Every,
    /// Fsync once every `n` buffered lines (and at barriers).
    Batch(usize),
    /// Fsync only at explicit barriers.
    Barrier,
}

impl SyncPolicy {
    /// Parse `every` | `batch:N` | `barrier` (N ≥ 1). `None` on anything
    /// else.
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s.trim() {
            "every" => Some(SyncPolicy::Every),
            "barrier" => Some(SyncPolicy::Barrier),
            other => {
                let n = other.strip_prefix("batch:")?.parse::<usize>().ok()?;
                if n == 0 {
                    None
                } else {
                    Some(SyncPolicy::Batch(n))
                }
            }
        }
    }

    /// The policy selected by `OTUNE_JOURNAL_SYNC`, defaulting to
    /// [`SyncPolicy::Every`]; unparseable values also fall back to
    /// `Every` (fail safe: never weaker durability by accident).
    pub fn from_env() -> SyncPolicy {
        std::env::var(SYNC_ENV)
            .ok()
            .and_then(|s| SyncPolicy::parse(&s))
            .unwrap_or(SyncPolicy::Every)
    }

    /// Canonical string form (round-trips through [`SyncPolicy::parse`]).
    pub fn as_string(&self) -> String {
        match self {
            SyncPolicy::Every => "every".to_string(),
            SyncPolicy::Batch(n) => format!("batch:{n}"),
            SyncPolicy::Barrier => "barrier".to_string(),
        }
    }
}

/// Counter names a writer bumps when it flushes; each is optional so
/// surfaces expose only the metrics they own.
#[derive(Debug, Clone, Default)]
pub struct WriterMetrics {
    /// Handle the counters flow through (disabled → no-ops).
    pub telemetry: Telemetry,
    /// Counter incremented once per non-empty flushed batch.
    pub batches: Option<&'static str>,
    /// Counter incremented once per `sync_data`.
    pub fsyncs: Option<&'static str>,
    /// Counter incremented by the payload bytes of each flush.
    pub bytes: Option<&'static str>,
}

/// Group-commit append handle over one JSONL file.
///
/// Lines are staged in an in-memory buffer; [`flush`] writes the whole
/// buffer and pays one `sync_data` for it. The [`SyncPolicy`] decides
/// whether [`append_line`] flushes eagerly (per line, per batch) or
/// leaves everything to explicit [`barrier`]s. Dropping the writer
/// flushes best-effort — but `std::process::abort()` skips destructors,
/// so crash semantics are exactly "unacked suffix lost".
///
/// [`flush`]: BatchedWriter::flush
/// [`append_line`]: BatchedWriter::append_line
/// [`barrier`]: BatchedWriter::barrier
#[derive(Debug)]
pub struct BatchedWriter {
    path: PathBuf,
    file: File,
    policy: SyncPolicy,
    /// Staged payload not yet written to the file.
    buf: Vec<u8>,
    /// Lines staged in `buf`.
    pending: usize,
    /// Lines flushed *and* fsynced — the durable prefix.
    acked: u64,
    /// The file ended without a trailing newline at open (torn tail);
    /// healed lazily before the first write, or eagerly by `heal_now`.
    needs_newline: bool,
    /// File length as the OS sees it (excludes the staged buffer).
    file_len: u64,
    metrics: WriterMetrics,
    /// Abort after this many completed fsyncs (1-based), if armed.
    crash_at_fsync: Option<u64>,
    /// Completed `sync_data` calls on this writer.
    fsyncs: u64,
}

impl BatchedWriter {
    /// Open (or create) `path` for appending under `policy`. A torn tail
    /// (no trailing newline) is detected here and healed lazily before
    /// the first write — call [`BatchedWriter::heal_now`] to heal
    /// eagerly.
    pub fn open(path: &Path, policy: SyncPolicy) -> io::Result<BatchedWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let file_len = file.metadata()?.len();
        let mut needs_newline = false;
        if file_len > 0 {
            let mut reader = File::open(path)?;
            reader.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            reader.read_exact(&mut last)?;
            needs_newline = last[0] != b'\n';
        }
        Ok(BatchedWriter {
            path: path.to_path_buf(),
            file,
            policy,
            buf: Vec::new(),
            pending: 0,
            acked: 0,
            needs_newline,
            file_len,
            metrics: WriterMetrics::default(),
            crash_at_fsync: None,
            fsyncs: 0,
        })
    }

    /// Attach flush counters.
    pub fn with_metrics(mut self, metrics: WriterMetrics) -> BatchedWriter {
        self.metrics = metrics;
        self
    }

    /// Replace the flush counters on an existing writer.
    pub fn set_metrics(&mut self, metrics: WriterMetrics) {
        self.metrics = metrics;
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The active sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Lines staged but not yet flushed.
    pub fn pending_lines(&self) -> usize {
        self.pending
    }

    /// Lines made durable so far (flushed and fsynced) by this writer.
    pub fn acked_lines(&self) -> u64 {
        self.acked
    }

    /// Completed `sync_data` calls on this writer.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Logical length: file bytes plus the staged buffer (what the file
    /// length becomes after the next flush). Used for segment rotation.
    pub fn logical_len(&self) -> u64 {
        self.file_len + self.buf.len() as u64 + u64::from(self.needs_newline)
    }

    /// Arm a crash right after the N-th completed `sync_data` (1-based).
    pub fn arm_crash_at_fsync(&mut self, n: u64) {
        self.crash_at_fsync = Some(n);
    }

    /// Heal a torn tail now: append the missing newline and fsync it, so
    /// the next entry starts on a fresh line even if nothing else is
    /// ever appended.
    pub fn heal_now(&mut self) -> io::Result<()> {
        if self.needs_newline {
            self.needs_newline = false;
            self.file.write_all(b"\n")?;
            self.file_len += 1;
            self.sync()?;
        }
        Ok(())
    }

    /// Stage one line (without trailing newline) and flush if the policy
    /// calls for it. Returns whether the line is already durable.
    pub fn append_line(&mut self, line: &str) -> io::Result<bool> {
        if self.needs_newline {
            // Lazy torn-tail heal: start the new entry on a fresh line.
            self.needs_newline = false;
            self.buf.push(b'\n');
        }
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        self.pending += 1;
        let flush_now = match self.policy {
            SyncPolicy::Every => true,
            SyncPolicy::Batch(n) => self.pending >= n,
            SyncPolicy::Barrier => false,
        };
        if flush_now {
            self.flush()?;
        }
        Ok(flush_now)
    }

    /// Write the staged buffer and pay one `sync_data` for it. No-op
    /// when nothing is staged.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.buf)?;
        let bytes = self.buf.len() as u64;
        self.file_len += bytes;
        let lines = self.pending as u64;
        self.buf.clear();
        self.pending = 0;
        let m = &self.metrics;
        if let Some(name) = m.batches {
            m.telemetry.incr(name);
        }
        if let Some(name) = m.bytes {
            m.telemetry.add(name, bytes);
        }
        self.sync()?;
        self.acked += lines;
        Ok(())
    }

    /// Sync barrier: after this returns, every line ever appended is
    /// durable. Pure no-op when nothing is pending (so the `Every`
    /// policy pays no extra fsyncs at barriers).
    pub fn barrier(&mut self) -> io::Result<()> {
        self.flush()
    }

    /// Drop the staged (unflushed, unsynced) suffix — the in-process
    /// equivalent of crashing before the next flush. Test hook for
    /// crash-boundary proptests.
    pub fn discard_unsynced(&mut self) {
        self.buf.clear();
        self.pending = 0;
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        if let Some(name) = self.metrics.fsyncs {
            self.metrics.telemetry.incr(name);
        }
        if self.crash_at_fsync == Some(self.fsyncs) {
            // Kill -9 semantics: no destructors, no unwinding — the
            // staged suffix (if any) dies with the process.
            std::process::abort();
        }
        Ok(())
    }
}

impl Drop for BatchedWriter {
    fn drop(&mut self) {
        // Best-effort: clean shutdown loses nothing. abort() skips this.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("otune-durable-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log.jsonl")
    }

    #[test]
    fn parses_sync_policies() {
        assert_eq!(SyncPolicy::parse("every"), Some(SyncPolicy::Every));
        assert_eq!(SyncPolicy::parse("barrier"), Some(SyncPolicy::Barrier));
        assert_eq!(SyncPolicy::parse("batch:8"), Some(SyncPolicy::Batch(8)));
        assert_eq!(SyncPolicy::parse(" batch:1 "), Some(SyncPolicy::Batch(1)));
        assert_eq!(SyncPolicy::parse("batch:0"), None);
        assert_eq!(SyncPolicy::parse("batch:"), None);
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        for p in [SyncPolicy::Every, SyncPolicy::Batch(5), SyncPolicy::Barrier] {
            assert_eq!(SyncPolicy::parse(&p.as_string()), Some(p));
        }
    }

    #[test]
    fn every_policy_flushes_each_line() {
        let path = tmp("every");
        let _ = std::fs::remove_file(&path);
        let mut w = BatchedWriter::open(&path, SyncPolicy::Every).unwrap();
        assert!(w.append_line("{\"a\":1}").unwrap());
        assert!(w.append_line("{\"a\":2}").unwrap());
        assert_eq!(w.acked_lines(), 2);
        assert_eq!(w.fsyncs(), 2);
        assert_eq!(w.pending_lines(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
    }

    #[test]
    fn batch_policy_groups_lines_under_one_fsync() {
        let path = tmp("batch");
        let _ = std::fs::remove_file(&path);
        let mut w = BatchedWriter::open(&path, SyncPolicy::Batch(3)).unwrap();
        assert!(!w.append_line("1").unwrap());
        assert!(!w.append_line("2").unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        assert!(w.append_line("3").unwrap(), "third line fills the batch");
        assert_eq!(w.fsyncs(), 1, "one sync_data covered the whole batch");
        assert_eq!(w.acked_lines(), 3);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n2\n3\n");
    }

    #[test]
    fn barrier_policy_defers_everything_to_barriers() {
        let path = tmp("barrier");
        let _ = std::fs::remove_file(&path);
        let mut w = BatchedWriter::open(&path, SyncPolicy::Barrier).unwrap();
        for i in 0..10 {
            assert!(!w.append_line(&format!("{i}")).unwrap());
        }
        assert_eq!(w.fsyncs(), 0);
        w.barrier().unwrap();
        assert_eq!(w.fsyncs(), 1);
        assert_eq!(w.acked_lines(), 10);
        // An empty barrier is free.
        w.barrier().unwrap();
        assert_eq!(w.fsyncs(), 1);
    }

    #[test]
    fn discard_unsynced_loses_only_the_staged_suffix() {
        let path = tmp("discard");
        let _ = std::fs::remove_file(&path);
        let mut w = BatchedWriter::open(&path, SyncPolicy::Batch(2)).unwrap();
        w.append_line("a").unwrap();
        w.append_line("b").unwrap(); // flushed batch
        w.append_line("c").unwrap(); // staged only
        w.discard_unsynced();
        w.barrier().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\nb\n");
        assert_eq!(w.acked_lines(), 2);
    }

    #[test]
    fn torn_tail_heals_lazily_on_next_append() {
        let path = tmp("lazyheal");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "complete\npart").unwrap();
        let mut w = BatchedWriter::open(&path, SyncPolicy::Every).unwrap();
        w.append_line("next").unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "complete\npart\nnext\n"
        );
    }

    #[test]
    fn heal_now_repairs_the_tail_without_an_append() {
        let path = tmp("eagerheal");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "part").unwrap();
        let mut w = BatchedWriter::open(&path, SyncPolicy::Barrier).unwrap();
        w.heal_now().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "part\n");
        // Already healed: a second call is free.
        let fsyncs = w.fsyncs();
        w.heal_now().unwrap();
        assert_eq!(w.fsyncs(), fsyncs);
    }

    #[test]
    fn drop_flushes_best_effort() {
        let path = tmp("dropflush");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = BatchedWriter::open(&path, SyncPolicy::Barrier).unwrap();
            w.append_line("staged").unwrap();
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "staged\n");
    }

    #[test]
    fn logical_len_tracks_staged_bytes() {
        let path = tmp("logical");
        let _ = std::fs::remove_file(&path);
        let mut w = BatchedWriter::open(&path, SyncPolicy::Barrier).unwrap();
        w.append_line("abc").unwrap();
        assert_eq!(w.logical_len(), 4);
        w.barrier().unwrap();
        assert_eq!(w.logical_len(), 4);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 4);
    }

    #[test]
    fn flush_counters_reach_the_registry() {
        let path = tmp("counters");
        let _ = std::fs::remove_file(&path);
        let (telemetry, _sink) = crate::Telemetry::ring(16);
        let metrics = WriterMetrics {
            telemetry: telemetry.clone(),
            batches: Some(metric::JOURNAL_BATCHES),
            fsyncs: Some(metric::JOURNAL_FSYNCS),
            bytes: Some(metric::JOURNAL_BYTES),
        };
        let mut w = BatchedWriter::open(&path, SyncPolicy::Batch(2))
            .unwrap()
            .with_metrics(metrics);
        w.append_line("xy").unwrap();
        w.append_line("zw").unwrap();
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counters[metric::JOURNAL_BATCHES], 1);
        assert_eq!(snap.counters[metric::JOURNAL_FSYNCS], 1);
        assert_eq!(snap.counters[metric::JOURNAL_BYTES], 6);
    }
}
