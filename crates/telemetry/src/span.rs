//! Timing spans: RAII guards that record elapsed seconds into a
//! histogram when dropped.

use crate::Telemetry;
use std::time::Instant;

/// A timing guard returned by [`Telemetry::span`].
///
/// When the guard drops, the elapsed wall-clock seconds are recorded
/// into the histogram named at creation. A guard from a disabled
/// handle holds no `Instant` and never reads the clock — the cost is
/// one `Option` branch at construction and one at drop.
#[must_use = "a span records its timing when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    telemetry: Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn start(telemetry: Telemetry, name: &'static str, enabled: bool) -> Self {
        Span {
            telemetry,
            name,
            start: enabled.then(Instant::now),
        }
    }

    /// Whether this guard holds a start timestamp (false on disabled
    /// handles, which never read the clock) — the zero-overhead
    /// contract hook for benches.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// End the span explicitly (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.telemetry
                .observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_seconds() {
        let (t, _sink) = Telemetry::ring(4);
        {
            let span = t.span("work_s");
            std::thread::sleep(std::time::Duration::from_millis(2));
            span.finish();
        }
        let snap = t.snapshot().unwrap();
        let h = &snap.histograms["work_s"];
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.002, "max = {}", h.max);
    }

    #[test]
    fn disabled_span_holds_no_instant() {
        let t = Telemetry::disabled();
        let span = t.span("work_s");
        assert!(span.start.is_none());
    }
}
