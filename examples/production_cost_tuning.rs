//! Production-style cost tuning (the §6.2 scenario).
//!
//! ```text
//! cargo run --release -p otune-core --example production_cost_tuning
//! ```
//!
//! Tunes the eight Table-2 advertisement tasks: execution-cost objective
//! (β = 0.5), constraints at twice the manual configuration's metrics, the
//! manual run seeded as the incumbent, and per-period data-size drift.
//! Prints a Table-2-style manual-vs-tuned comparison.

use otune_core::prelude::*;
use otune_sparksim::production::eight_advertising_tasks;

fn main() {
    let budget = 20;
    println!("tuning 8 production tasks, {budget} iterations each (β = 0.5, limits = 2× manual)\n");
    println!(
        "{:<26} {:>12} {:>12} {:>8} {:>8} {:>22} {:>6}",
        "task", "manual cost", "tuned cost", "Δcost", "Δmemory", "executors (man→ours)", "#iter"
    );

    for (i, task) in eight_advertising_tasks().iter().enumerate() {
        let space = task.space();
        let job = task.job();

        // The manual configuration's production metrics define the
        // constraints (and the incumbent).
        let manual = job.run_with_datasize(&task.manual_config, task.datasize.size_at(0), 0);

        let mut tuner = OnlineTuner::new(
            space,
            TunerOptions {
                beta: 0.5,
                t_max: Some(2.0 * manual.runtime_s),
                r_max: Some(2.0 * manual.resource),
                budget,
                seed: i as u64,
                ..TunerOptions::default()
            },
        );
        tuner.seed_observation(
            task.manual_config.clone(),
            manual.runtime_s,
            manual.resource,
            &[1.0],
        );

        let mut best_iter = 0usize;
        let mut best = (
            manual.execution_cost(),
            manual.memory_gb_h,
            task.manual_config.clone(),
        );
        for t in 1..=budget as u64 {
            let ds = task.datasize.size_at(t);
            let ctx = vec![ds / task.datasize.base_gb];
            let cfg = tuner.suggest(&ctx).expect("alternating protocol");
            let r = job.run_with_datasize(&cfg, ds, t);
            let feasible = r.runtime_s <= 2.0 * manual.runtime_s;
            if feasible && r.execution_cost() < best.0 {
                best = (r.execution_cost(), r.memory_gb_h, cfg.clone());
                best_iter = t as usize;
            }
            tuner
                .observe(cfg, r.runtime_s, r.resource, &ctx)
                .expect("pending");
        }

        let exec = |c: &Configuration| {
            format!(
                "{}x{}c{}g",
                c[SparkParam::ExecutorInstances.index()],
                c[SparkParam::ExecutorCores.index()],
                c[SparkParam::ExecutorMemory.index()]
            )
        };
        println!(
            "{:<26} {:>12.0} {:>12.0} {:>7.1}% {:>7.1}% {:>22} {:>6}",
            task.name,
            manual.execution_cost(),
            best.0,
            (best.0 - manual.execution_cost()) / manual.execution_cost() * 100.0,
            (best.1 - manual.memory_gb_h) / manual.memory_gb_h * 100.0,
            format!("{} → {}", exec(&task.manual_config), exec(&best.2)),
            best_iter,
        );
    }
    println!("\n(paper's Table 2 averages: cost −62.22%, memory −76.52%, best iter ≈ 9.88)");
}
