//! Quickstart: tune a simulated HiBench WordCount job online.
//!
//! ```text
//! cargo run --release -p otune-core --example quickstart
//! ```
//!
//! Demonstrates the minimal loop from §3.1: build the 30-parameter Spark
//! space, define a cost objective with a runtime safety constraint, and
//! alternate `suggest` (the configuration for the next periodic run) with
//! `observe` (the run's metrics).

use otune_core::prelude::*;

fn main() {
    // The job under tuning: simulated WordCount on the 4-node test cluster.
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount));

    // Baseline: the default configuration's behaviour.
    let default_cfg = space.default_configuration();
    let baseline = job.run(&default_cfg, 0);
    println!(
        "default config: runtime {:.1}s, resource {:.1}, cost {:.0}",
        baseline.runtime_s,
        baseline.resource,
        baseline.execution_cost()
    );

    // Tune the execution cost (β = 0.5) with the paper's safety rule:
    // never exceed twice the baseline runtime.
    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            t_max: Some(2.0 * baseline.runtime_s),
            budget: 20,
            ..TunerOptions::default()
        },
    );
    tuner.seed_observation(default_cfg, baseline.runtime_s, baseline.resource, &[]);

    for run in 1..=20u64 {
        let cfg = tuner.suggest(&[]).expect("suggest/observe alternation");
        let result = job.run(&cfg, run);
        println!(
            "run {run:>2}: runtime {:>7.1}s  resource {:>6.1}  cost {:>8.0}  {}",
            result.runtime_s,
            result.resource,
            result.execution_cost(),
            if result.runtime_s <= 2.0 * baseline.runtime_s {
                ""
            } else {
                "  (!) over threshold"
            }
        );
        tuner
            .observe(cfg, result.runtime_s, result.resource, &[])
            .expect("pending suggestion");
    }

    let best = tuner.best().expect("at least one observation");
    let saved = (baseline.execution_cost() - best.runtime * best.resource)
        / baseline.execution_cost()
        * 100.0;
    println!(
        "\nbest found: runtime {:.1}s, resource {:.1}, cost {:.0}  ({saved:.1}% cheaper than default)",
        best.runtime, best.resource, best.runtime * best.resource
    );
    let inst = best.config[SparkParam::ExecutorInstances.index()].clone();
    let cores = best.config[SparkParam::ExecutorCores.index()].clone();
    let mem = best.config[SparkParam::ExecutorMemory.index()].clone();
    println!("best executors: {inst} instances x {cores} cores x {mem} GB");
}
