//! Safe exploration demo (§4.2).
//!
//! ```text
//! cargo run --release -p otune-core --example safe_online_tuning
//! ```
//!
//! Runs the same tuning task with and without the GP safe region (several
//! seeds) and shows how many online executions violate the runtime
//! threshold in each mode. In production, every violation is a real
//! periodic job that ran unacceptably slowly.

use otune_core::prelude::*;

fn run(
    enable_safety: bool,
    t_max: f64,
    job: &SimJob,
    space: &ConfigSpace,
    seed: u64,
) -> (usize, f64) {
    let mut tuner = OnlineTuner::new(
        space.clone(),
        TunerOptions {
            beta: 0.5,
            t_max: Some(t_max),
            budget: 30,
            enable_safety,
            seed,
            ..TunerOptions::default()
        },
    );
    let default_cfg = space.default_configuration();
    let baseline = job.run(&default_cfg, 0);
    tuner.seed_observation(default_cfg, baseline.runtime_s, baseline.resource, &[]);

    let mut violations = 0;
    let mut best_cost = baseline.execution_cost();
    for t in 1..=30u64 {
        let cfg = tuner.suggest(&[]).expect("alternating protocol");
        let r = job.run(&cfg, seed * 100 + t);
        if r.runtime_s > t_max {
            violations += 1;
        } else {
            best_cost = best_cost.min(r.execution_cost());
        }
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    (violations, best_cost)
}

fn main() {
    let space = spark_space(ClusterScale::hibench());
    // TeraSort: memory-hungry, with real cliffs in the configuration space.
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::TeraSort));
    let t_max = 2.0 * job.run(&space.default_configuration(), 0).runtime_s;
    println!("runtime threshold: {t_max:.0}s (2x the default configuration)\n");

    let seeds = 5u64;
    let mut tot = [(0usize, 0.0f64), (0usize, 0.0f64)];
    for seed in 0..seeds {
        for (i, enable_safety) in [false, true].into_iter().enumerate() {
            let (v, c) = run(enable_safety, t_max, &job, &space, seed + 1);
            tot[i].0 += v;
            tot[i].1 += c / seeds as f64;
        }
    }
    let pct = |v: usize| v as f64 / (30.0 * seeds as f64) * 100.0;
    println!(
        "vanilla BO (no safe region): {:>5.1}% of online runs over threshold; avg best cost {:.0}",
        pct(tot[0].0),
        tot[0].1
    );
    println!(
        "with safe region (γ = 1.0):  {:>5.1}% of online runs over threshold; avg best cost {:.0}",
        pct(tot[1].0),
        tot[1].1
    );
    println!(
        "\nThe safe region trades a little objective quality for fewer\n\
         unacceptable online runs (paper: 93.00% safe vs 69.67% for vanilla BO)."
    );
}
