//! Meta-learning transfer across tasks (§5).
//!
//! ```text
//! cargo run --release -p otune-core --example meta_warm_start
//! ```
//!
//! Builds tuning histories for several source workloads, trains the
//! task-similarity model on their meta-features, and tunes a *new*
//! workload (TeraSort) three ways: cold, warm-started from the top-3
//! similar tasks, and warm-started plus the ensemble surrogate. Prints the
//! best-cost-so-far trajectory of each variant.

use otune_core::prelude::*;
use otune_meta::{extract_meta_features, warm_start_configs, SimilarityLearner};

/// Build a (history, meta-features) record by tuning a source task.
fn record_for(task: HibenchTask, budget: usize, seed: u64) -> TaskRecord {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(task)).with_seed(seed);
    let baseline = job.run(&space.default_configuration(), 0);
    let mut tuner = OnlineTuner::new(
        space.clone(),
        TunerOptions {
            beta: 0.5,
            t_max: Some(2.0 * baseline.runtime_s),
            budget,
            enable_meta: false,
            seed,
            ..TunerOptions::default()
        },
    );
    for t in 0..budget as u64 {
        let cfg = tuner.suggest(&[]).expect("alternating protocol");
        let r = job.run(&cfg, t);
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    tuner.export_record(task.name(), extract_meta_features(&baseline.event_log))
}

fn tune_target(
    label: &str,
    warm: Vec<Configuration>,
    bases: Vec<TaskRecord>,
    budget: usize,
) -> Vec<f64> {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::TeraSort));
    let baseline = job.run(&space.default_configuration(), 0);
    let enable_meta = !bases.is_empty();
    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            t_max: Some(2.0 * baseline.runtime_s),
            budget,
            warm_configs: warm,
            base_tasks: bases,
            enable_meta,
            seed: 99,
            ..TunerOptions::default()
        },
    );
    let mut best = f64::INFINITY;
    let mut curve = Vec::new();
    for t in 0..budget as u64 {
        let cfg = tuner.suggest(&[]).expect("alternating protocol");
        let r = job.run(&cfg, 7000 + t);
        best = best.min(r.execution_cost());
        curve.push(best);
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    println!(
        "{label:<28} best cost after 3 iters: {:>10.0}, after {budget}: {:>10.0}",
        curve[2.min(curve.len() - 1)],
        curve.last().unwrap()
    );
    curve
}

fn main() {
    let budget = 20;
    println!("building source-task histories (Sort, WordCount, PageRank, LR, SVD)...");
    let sources: Vec<TaskRecord> = [
        HibenchTask::Sort,
        HibenchTask::WordCount,
        HibenchTask::PageRank,
        HibenchTask::LR,
        HibenchTask::SVD,
    ]
    .iter()
    .enumerate()
    .map(|(i, t)| record_for(*t, 20, i as u64 + 1))
    .collect();

    // Similarity model + warm-start configs for the new TeraSort task.
    let space = spark_space(ClusterScale::hibench());
    let learner = SimilarityLearner::train(&space, &sources, 50, 0).expect("enough source tasks");
    let target_log = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::TeraSort))
        .with_noise(0.0)
        .run(&space.default_configuration(), 0)
        .event_log;
    let target_features = extract_meta_features(&target_log);
    let warm = warm_start_configs(&learner, &target_features, &sources, 3);
    let ranked = learner.rank_tasks(&target_features, &sources);
    println!(
        "most similar sources to terasort: {:?}\n",
        ranked
            .iter()
            .take(3)
            .map(|(i, d)| (sources[*i].task_id.as_str(), (d * 100.0).round() / 100.0))
            .collect::<Vec<_>>()
    );

    tune_target("cold start", vec![], vec![], budget);
    tune_target("warm start (top-3 configs)", warm.clone(), vec![], budget);
    tune_target("warm start + ensemble", warm, sources, budget);
    println!("\n(paper: warm-starting cuts early-iteration cost by 25-95%; the ensemble");
    println!(" surrogate reaches vanilla BO's 30-iteration cost in ≥3x fewer iterations)");
}
