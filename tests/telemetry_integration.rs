//! The observability layer against the full service: driving a tuning
//! task through the controller must produce a complete, ordered,
//! replayable event stream and a coherent metrics snapshot.

use otune_core::controller::TaskState;
use otune_core::prelude::*;
use otune_core::telemetry::{
    metric, read_jsonl, Event, EventKind, JsonlSink, StopReason, SuggestionKind,
};
use otune_meta::extract_meta_features;

fn toy_space() -> ConfigSpace {
    use otune_space::Parameter;
    ConfigSpace::new(vec![
        Parameter::int("n", 1, 50, 10),
        Parameter::int("m", 1, 32, 8),
    ])
}

fn toy_eval(c: &Configuration) -> (f64, f64) {
    let n = c[0].as_int().unwrap() as f64;
    let m = c[1].as_int().unwrap() as f64;
    (400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
}

/// Drive one task to budget exhaustion; return the emitted events.
fn drive_task(telemetry: Telemetry, budget: usize) -> Telemetry {
    let mut ctl = OnlineTuneController::new();
    ctl.set_telemetry(telemetry.clone());
    let h = ctl.create_task(
        "toy-task",
        toy_space(),
        TunerOptions {
            budget,
            t_max: Some(100.0),
            enable_meta: false,
            ..TunerOptions::default()
        },
    );
    for _ in 0..budget {
        let cfg = ctl.request_config(&h, &[]).unwrap();
        let (rt, r) = toy_eval(&cfg);
        ctl.report_result(&h, cfg, rt, r, &[], None).unwrap();
    }
    // One more request flips the task to Stopped.
    let _ = ctl.request_config(&h, &[]).unwrap();
    assert_eq!(ctl.state(&h), Ok(TaskState::Stopped));
    telemetry
}

fn labels(events: &[Event]) -> Vec<&'static str> {
    events.iter().map(|e| e.kind.label()).collect()
}

#[test]
fn full_event_stream_is_ordered_and_complete() {
    let (telemetry, sink) = Telemetry::ring(4096);
    drive_task(telemetry, 12);
    let events = sink.events();
    let labels = labels(&events);

    // Sequence numbers are strictly increasing.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq order: {:?}", labels);
    }
    // Every event carries the task label.
    assert!(events.iter().all(|e| e.task == "toy-task"));

    // Lifecycle shape: registration first, stop last.
    assert_eq!(labels.first(), Some(&"TaskRegistered"));
    assert_eq!(labels.last(), Some(&"TaskStopped"));
    match &events.last().unwrap().kind {
        EventKind::TaskStopped { reason } => {
            assert_eq!(*reason, StopReason::BudgetExhausted)
        }
        k => panic!("unexpected final event {k:?}"),
    }

    // Every iteration produced a suggestion and an observation.
    let suggestions: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SuggestionMade { .. }))
        .collect();
    let observations = labels
        .iter()
        .filter(|l| **l == "ObservationReported")
        .count();
    assert_eq!(suggestions.len(), 12);
    assert_eq!(observations, 12);

    // The provenance arc: initial design first, BO afterwards.
    let sources: Vec<SuggestionKind> = suggestions
        .iter()
        .map(|e| match &e.kind {
            EventKind::SuggestionMade { source, .. } => *source,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(sources[0], SuggestionKind::InitialDesign);
    assert!(
        sources.contains(&SuggestionKind::Bo),
        "BO iterations happened: {sources:?}"
    );
    let first_bo = sources
        .iter()
        .position(|s| *s == SuggestionKind::Bo)
        .unwrap();
    assert!(
        sources[..first_bo]
            .iter()
            .all(|s| matches!(s, SuggestionKind::InitialDesign | SuggestionKind::WarmStart)),
        "nothing but the initial design precedes BO: {sources:?}"
    );

    // Surrogates were fitted once BO started.
    assert!(labels.contains(&"SurrogateFitted"));

    // Suggestions interleave with observations (suggest → observe per
    // iteration, never two suggestions back to back).
    let mut pending = 0i32;
    for l in &labels {
        match *l {
            "SuggestionMade" => {
                pending += 1;
                assert!(pending <= 1, "two suggestions without an observation");
            }
            "ObservationReported" => pending -= 1,
            _ => {}
        }
    }
}

#[test]
fn warm_start_event_appears_in_transfer_scenario() {
    let (telemetry, sink) = Telemetry::ring(4096);
    let mut ctl = OnlineTuneController::new();
    ctl.set_telemetry(telemetry.clone());
    let space = spark_space(ClusterScale::hibench());

    // Two completed source tasks populate the repository.
    for (tid, task) in [
        ("src-wc", HibenchTask::WordCount),
        ("src-sort", HibenchTask::Sort),
    ] {
        let job = SimJob::new(ClusterSpec::hibench(), hibench_task(task));
        let h = ctl.create_task(
            tid,
            space.clone(),
            TunerOptions {
                budget: 6,
                enable_meta: false,
                ..TunerOptions::default()
            },
        );
        for t in 0..6u64 {
            let cfg = ctl.request_config(&h, &[]).unwrap();
            let r = job.run(&cfg, t);
            let meta = (t == 0).then(|| extract_meta_features(&r.event_log));
            ctl.report_result(&h, cfg, r.runtime_s, r.resource, &[], meta)
                .unwrap();
        }
    }

    // A new similar task reports meta-features → warm-start injection.
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount));
    let h = ctl.create_task(
        "target",
        space,
        TunerOptions {
            budget: 6,
            enable_meta: false,
            ..TunerOptions::default()
        },
    );
    for t in 0..4u64 {
        let cfg = ctl.request_config(&h, &[]).unwrap();
        let r = job.run(&cfg, t);
        let meta = (t == 0).then(|| extract_meta_features(&r.event_log));
        ctl.report_result(&h, cfg, r.runtime_s, r.resource, &[], meta)
            .unwrap();
    }

    let events = sink.events();
    let warm: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WarmStartInjected { .. }))
        .collect();
    assert_eq!(warm.len(), 1, "one injection for the target task");
    assert_eq!(warm[0].task, "target");
    match &warm[0].kind {
        EventKind::WarmStartInjected {
            n_configs,
            n_sources,
        } => {
            assert!(*n_configs >= 1);
            assert_eq!(*n_sources, 2);
        }
        _ => unreachable!(),
    }
    // The transferred configs were actually suggested afterwards.
    let target_sources: Vec<SuggestionKind> = events
        .iter()
        .filter(|e| e.task == "target")
        .filter_map(|e| match &e.kind {
            EventKind::SuggestionMade { source, .. } => Some(*source),
            _ => None,
        })
        .collect();
    assert!(
        target_sources.contains(&SuggestionKind::WarmStart),
        "warm configs were served: {target_sources:?}"
    );
    let hits = telemetry.snapshot().unwrap().counters[metric::WARM_START_HITS];
    assert!(hits >= 1, "warm_start_hits counted: {hits}");
}

#[test]
fn metrics_snapshot_reflects_the_run() {
    let (telemetry, _sink) = Telemetry::ring(4096);
    let telemetry = drive_task(telemetry, 12);
    let snap = telemetry.snapshot().unwrap();

    // Every suggest call was timed.
    assert_eq!(snap.histograms[metric::SUGGEST_LATENCY_S].count, 12);
    assert!(snap.histograms[metric::SUGGEST_LATENCY_S].max > 0.0);
    // GP fits happened (two surrogates per BO iteration).
    assert!(snap.histograms[metric::GP_FIT_S].count >= 2);
    // EIC evaluations were counted per acquisition maximization.
    assert!(snap.histograms[metric::EIC_EVALS_PER_ITER].count >= 1);
    assert!(snap.histograms[metric::EIC_EVALS_PER_ITER].max > 0.0);
    // The sub-space gauge is live.
    assert!(snap.gauges[metric::SUBSPACE_K] >= 1.0);
}

#[test]
fn jsonl_sink_replays_identically_to_the_ring() {
    let path = std::env::temp_dir().join("otune-telemetry-integration.jsonl");
    let telemetry = Telemetry::new(Box::new(JsonlSink::create(&path).unwrap()));
    let telemetry = drive_task(telemetry, 8);
    telemetry.flush();

    let replayed = read_jsonl(&path).unwrap();
    assert!(!replayed.is_empty());
    assert_eq!(replayed[0].kind.label(), "TaskRegistered");
    assert_eq!(replayed.last().unwrap().kind.label(), "TaskStopped");
    // Round-trip fidelity: serialize again and compare.
    for e in &replayed {
        let line = serde_json::to_string(e).unwrap();
        let back: Event = serde_json::from_str(&line).unwrap();
        assert_eq!(&back, e);
    }
    std::fs::remove_file(&path).ok();
}
