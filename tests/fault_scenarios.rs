//! Fault-injection scenarios against the full tuning stack: crashed,
//! killed, and straggling production runs must leave the tuner with a
//! censored-but-coherent runhistory, trigger the failure-streak fallback,
//! shrink the adaptive sub-space, and never panic or lose the incumbent.

use otune_core::{OnlineTuner, TunerOptions};
use otune_space::{spark_space, ClusterScale, Configuration};
use otune_sparksim::{
    hibench_task, ClusterSpec, ExecutionStatus, FaultKind, FaultProfile, HibenchTask, SimJob,
};
use otune_telemetry::{metric, Event, EventKind, MetricsSnapshot, ResizeDirection, Telemetry};

/// Builder DSL for one fault-injection campaign against the simulated
/// WordCount workload. Run indices are the simulator's: the baseline is
/// run 0 (always fault-free), tuning iteration `t` is run `t`.
struct Scenario {
    profile: FaultProfile,
    budget: usize,
    seed: u64,
    tau_consec: usize,
}

/// Everything a scenario leaves behind, for invariant assertions.
struct Outcome {
    tuner: OnlineTuner,
    events: Vec<Event>,
    metrics: MetricsSnapshot,
    /// The suggestion trace, one configuration per iteration.
    trace: Vec<Configuration>,
    /// Execution status per iteration (parallel to `trace`).
    statuses: Vec<ExecutionStatus>,
    t_max: f64,
}

impl Scenario {
    fn new(seed: u64) -> Self {
        Scenario {
            profile: FaultProfile::new(seed),
            budget: 12,
            seed,
            tau_consec: 3,
        }
    }

    /// Stochastic per-run fault rates.
    fn rates(mut self, oom: f64, straggler: f64, lost: f64) -> Self {
        self.profile = self.profile.with_rates(oom, straggler, lost);
        self
    }

    /// Script `kind` to fire at run `run`.
    fn fail_at(mut self, run: u64, kind: FaultKind) -> Self {
        self.profile = self.profile.fail_at(run, kind);
        self
    }

    /// Script straggler spikes for every run in `runs`.
    fn straggle(mut self, runs: std::ops::Range<u64>) -> Self {
        self.profile = self.profile.straggle(runs);
        self
    }

    fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Kill budget for the injected faults (defaults to the tuner's
    /// `T_max` when unset).
    fn kill_over(mut self, t_max_s: f64) -> Self {
        self.profile = self.profile.with_t_max(t_max_s);
        self
    }

    /// Drive the campaign: seed the fault-free baseline, then one
    /// suggest → run → observe/observe_failed cycle per iteration.
    fn run(self) -> Outcome {
        let (telemetry, sink) = Telemetry::ring(4096);
        let telemetry = telemetry.for_task("scenario");
        let space = spark_space(ClusterScale::hibench());
        let clean = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount))
            .with_seed(self.seed);
        let baseline = clean.run(&space.default_configuration(), 0);
        let t_max = 2.0 * baseline.runtime_s;
        let mut profile = self.profile;
        profile.t_max_s = profile.t_max_s.or(Some(t_max));
        let job = clean.with_faults(profile);

        let mut tuner = OnlineTuner::new(
            space.clone(),
            TunerOptions {
                budget: self.budget,
                t_max: Some(t_max),
                tau_consec: self.tau_consec,
                enable_meta: false,
                seed: self.seed,
                ..TunerOptions::default()
            },
        );
        tuner.set_telemetry(telemetry.clone());
        tuner.seed_observation(
            space.default_configuration(),
            baseline.runtime_s,
            baseline.resource,
            &[],
        );

        let mut trace = Vec::new();
        let mut statuses = Vec::new();
        for t in 1..=self.budget as u64 {
            let cfg = tuner.suggest(&[]).expect("alternating protocol");
            let r = job.run(&cfg, t);
            trace.push(cfg.clone());
            statuses.push(r.status);
            if r.status.is_failure() {
                tuner
                    .observe_failed(cfg, r.runtime_s, r.resource, &[])
                    .expect("pending");
            } else {
                tuner
                    .observe(cfg, r.runtime_s, r.resource, &[])
                    .expect("pending");
            }
        }
        let metrics = telemetry.snapshot().unwrap_or_default();
        Outcome {
            tuner,
            events: sink.events(),
            metrics,
            trace,
            statuses,
            t_max,
        }
    }
}

fn counter(outcome: &Outcome, name: &str) -> u64 {
    outcome.metrics.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn scripted_failure_burst_is_censored_and_triggers_fallback() {
    // Five consecutive OOM kills: past τ_consec = 3 (fallback) and past
    // the sub-space manager's τ_failure = 5 (shrink).
    let outcome = Scenario::new(11)
        .fail_at(4, FaultKind::ExecutorOom)
        .fail_at(5, FaultKind::ExecutorOom)
        .fail_at(6, FaultKind::ExecutorOom)
        .fail_at(7, FaultKind::ExecutorOom)
        .fail_at(8, FaultKind::ExecutorOom)
        .budget(12)
        .run();

    // Every failed run is in the history, censored: runtime clamped to
    // the failure penalty (≥ T_max) and infeasible regardless of it.
    let failed: Vec<_> = outcome
        .tuner
        .history()
        .iter()
        .filter(|o| o.failed)
        .collect();
    assert_eq!(failed.len(), 5, "all five injected failures recorded");
    for o in &failed {
        assert!(
            o.runtime >= outcome.t_max,
            "censored runtime {} < T_max {}",
            o.runtime,
            outcome.t_max
        );
        assert!(!o.is_feasible(Some(outcome.t_max), None));
    }
    assert_eq!(counter(&outcome, metric::RUN_FAILURES), 5);

    // τ_consec consecutive failures retreated to the last known-safe
    // configuration (the seeded default — the only feasible point then).
    assert!(
        counter(&outcome, metric::FALLBACKS_TRIGGERED) >= 1,
        "fallback fired"
    );
    let fallback_events: Vec<&Event> = outcome
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FallbackTriggered { .. }))
        .collect();
    assert!(!fallback_events.is_empty());
    match &fallback_events[0].kind {
        EventKind::FallbackTriggered { streak } => assert_eq!(*streak, 3),
        _ => unreachable!(),
    }

    // Each failure emitted a RunFailed event with the growing streak.
    let streaks: Vec<usize> = outcome
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::RunFailed { streak, .. } => Some(*streak),
            _ => None,
        })
        .collect();
    assert_eq!(streaks.len(), 5);
    assert_eq!(streaks[..3], [1, 2, 3], "streak grows until the fallback");

    // The consecutive infeasible runs shrank the adaptive sub-space.
    assert!(
        outcome.events.iter().any(|e| matches!(
            e.kind,
            EventKind::SubspaceResized {
                direction: ResizeDirection::Shrink,
                ..
            }
        )),
        "sub-space shrank under the failure burst"
    );

    // The incumbent survived: feasible, never a failed run.
    let best = outcome.tuner.best().expect("incumbent exists");
    assert!(!best.failed);
    assert!(best.is_feasible(Some(outcome.t_max), None));
}

#[test]
fn stragglers_slow_runs_down_but_are_not_failures() {
    // Stragglers without a kill budget: runs complete (slowly) and are
    // observed normally — the failure machinery must stay quiet.
    let outcome = Scenario::new(3).straggle(3..6).kill_over(f64::MAX).run();

    assert_eq!(counter(&outcome, metric::RUN_FAILURES), 0);
    assert_eq!(counter(&outcome, metric::FALLBACKS_TRIGGERED), 0);
    assert!(outcome.tuner.history().iter().all(|o| !o.failed));
    assert!(outcome
        .statuses
        .iter()
        .any(|s| matches!(s, ExecutionStatus::Straggler { .. })));
    // Every iteration was recorded (seed + budget).
    assert_eq!(outcome.tuner.history().len(), 1 + outcome.trace.len());
}

#[test]
fn lost_executors_restart_and_finish_without_failing() {
    let outcome = Scenario::new(9)
        .fail_at(2, FaultKind::LostExecutor)
        .fail_at(5, FaultKind::LostExecutor)
        .kill_over(f64::MAX)
        .budget(8)
        .run();
    assert_eq!(counter(&outcome, metric::RUN_FAILURES), 0);
    assert!(outcome
        .statuses
        .iter()
        .any(|s| matches!(s, ExecutionStatus::LostExecutor { restarts } if *restarts >= 1)));
    assert!(outcome.tuner.history().iter().all(|o| !o.failed));
}

#[test]
fn random_twenty_percent_failure_campaign_survives_thirty_iterations() {
    // The acceptance campaign: 30 iterations at a 20% failure rate, plus
    // a scripted three-burst that guarantees the fallback path runs.
    let outcome = Scenario::new(7)
        .rates(0.2, 0.05, 0.05)
        .fail_at(10, FaultKind::ExecutorOom)
        .fail_at(11, FaultKind::ExecutorOom)
        .fail_at(12, FaultKind::TimeoutKill)
        .budget(30)
        .run();

    // Completed without panic, every iteration recorded.
    assert_eq!(outcome.trace.len(), 30);
    assert_eq!(outcome.tuner.history().len(), 31);

    // Failures happened and were counted.
    let failures = counter(&outcome, metric::RUN_FAILURES);
    assert!(failures >= 3, "at least the scripted burst: {failures}");
    assert_eq!(
        failures as usize,
        outcome.tuner.history().iter().filter(|o| o.failed).count()
    );
    assert!(counter(&outcome, metric::FALLBACKS_TRIGGERED) >= 1);

    // The campaign still ends with a feasible incumbent.
    let best = outcome.tuner.best().expect("incumbent exists");
    assert!(!best.failed, "incumbent is never a failed run");
    assert!(best.is_feasible(Some(outcome.t_max), None));
    assert!(best.runtime <= outcome.t_max);
}

#[test]
fn identical_scenarios_produce_bitwise_identical_campaigns() {
    let build = || {
        Scenario::new(5)
            .rates(0.25, 0.1, 0.05)
            .fail_at(3, FaultKind::ExecutorOom)
            .budget(10)
    };
    let a = build().run();
    let b = build().run();
    assert_eq!(a.trace, b.trace, "suggestion traces diverged");
    assert_eq!(a.statuses, b.statuses, "fault schedules diverged");
    for (x, y) in a.tuner.history().iter().zip(b.tuner.history()) {
        assert_eq!(x.runtime.to_bits(), y.runtime.to_bits());
        assert_eq!(x.objective.to_bits(), y.objective.to_bits());
        assert_eq!(x.failed, y.failed);
    }
}
