//! Incremental surrogate maintenance against the full tuner: across an
//! append-only online run the fitted models must be reused (cache hits and
//! rank-one updates), with full hyperparameter searches confined to the
//! initial fits and the scheduled re-search points.

use otune_core::prelude::*;
use otune_core::telemetry::metric;
use otune_gp::IncrementalPolicy;
use std::sync::Arc;

fn toy_space() -> ConfigSpace {
    use otune_space::Parameter;
    ConfigSpace::new(vec![
        Parameter::int("n", 1, 50, 10),
        Parameter::int("m", 1, 32, 8),
    ])
}

fn toy_eval(c: &Configuration) -> (f64, f64) {
    let n = c[0].as_int().unwrap() as f64;
    let m = c[1].as_int().unwrap() as f64;
    (400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
}

fn toy_resource(c: &Configuration) -> f64 {
    toy_eval(c).1
}

fn make_tuner(iterations: usize) -> OnlineTuner {
    let opts = TunerOptions {
        budget: iterations,
        // Pin the policy so the run is insensitive to OTUNE_INCREMENTAL and
        // the LML trigger: the only legal full searches are the initial fits
        // and the scheduled re-search every `refit_period` updates.
        incremental: IncrementalPolicy {
            enabled: true,
            lml_degradation: f64::INFINITY,
            ..IncrementalPolicy::default()
        },
        seed: 3,
        ..TunerOptions::default()
    };
    OnlineTuner::with_resource_fn(toy_space(), opts, Arc::new(toy_resource))
}

#[test]
fn online_run_reuses_surrogates_between_scheduled_searches() {
    let iterations = 20;
    let mut tuner = make_tuner(iterations);
    let telemetry = Telemetry::new(Box::new(otune_core::telemetry::NullSink));
    tuner.set_telemetry(telemetry.clone());

    let mut hits_mid = 0;
    for i in 0..iterations {
        let cfg = tuner.suggest(&[]).unwrap();
        let (rt, r) = toy_eval(&cfg);
        tuner.observe(cfg, rt, r, &[]).unwrap();
        if i == iterations / 2 {
            let snap = telemetry.snapshot().unwrap();
            hits_mid = snap
                .counters
                .get(metric::SURROGATE_CACHE_HITS)
                .copied()
                .unwrap_or(0);
        }
    }

    let snap = telemetry.snapshot().unwrap();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // The history only grows, so each of the two generator caches misses
    // exactly once (its very first fit) and hits on every later iteration.
    assert_eq!(counter(metric::SURROGATE_CACHE_MISSES), 2);
    let hits_end = counter(metric::SURROGATE_CACHE_HITS);
    assert!(
        hits_mid > 0 && hits_end > hits_mid,
        "cache hits must keep rising: mid {hits_mid}, end {hits_end}"
    );

    // Most extensions are rank-one factor updates, not refactorizations.
    assert!(
        counter(metric::SURROGATE_INCREMENTAL_UPDATES) >= 20,
        "expected rank-one updates to dominate: {:?}",
        snap.counters
    );

    // Zero unscheduled searches post-warm-up: every GP_HYPER_SEARCHES tick
    // is either one of the 2 initial fits or a scheduled re-search (at most
    // one per cache within 20 iterations at refit_period = 16).
    let searches = counter(metric::GP_HYPER_SEARCHES);
    assert!(
        (2..=4).contains(&searches),
        "only initial + scheduled searches allowed: {searches}"
    );
}

#[test]
fn disabled_incremental_mode_selects_identical_configurations() {
    // OTUNE_INCREMENTAL=0 (full refits at the cached jitter and hypers)
    // must walk the exact same suggestion trajectory.
    let run = |enabled: bool| -> Vec<Configuration> {
        let mut opts = make_tuner(12).options().clone();
        opts.incremental.enabled = enabled;
        let mut tuner = OnlineTuner::with_resource_fn(toy_space(), opts, Arc::new(toy_resource));
        let mut picked = Vec::new();
        for _ in 0..12 {
            let cfg = tuner.suggest(&[]).unwrap();
            let (rt, r) = toy_eval(&cfg);
            tuner.observe(cfg.clone(), rt, r, &[]).unwrap();
            picked.push(cfg);
        }
        picked
    };
    assert_eq!(run(true), run(false));
}
