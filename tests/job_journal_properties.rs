//! Property tests for the job journal and checkpoints: arbitrary event
//! sequences × arbitrary truncation points never panic the loader, torn
//! tails heal, and resume-from-checkpoint is indistinguishable from
//! replay-from-genesis.

use otune_jobs::{
    CampaignSpec, DlqEntry, FailureRecord, JobEngine, JobEvent, Journal, JournalEntry,
};
use otune_telemetry::{SyncPolicy, Telemetry};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_path(name: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "otune-jobprop-{name}-{}-{case}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&path);
    path
}

/// Deterministically decode one generated tuple into a journal event.
fn synth_event(code: u8, n: u64, x: f64) -> JobEvent {
    let task = (n % 8) as usize;
    let wave = n % 100;
    match code % 5 {
        0 => JobEvent::CheckpointLoaded { wave_cursor: wave },
        1 => JobEvent::JobPaused { wave_cursor: wave },
        2 => JobEvent::RetryScheduled {
            task,
            wave,
            attempt: (n % 5) as usize + 1,
            backoff_s: x,
        },
        3 => JobEvent::TaskFailed {
            task,
            wave,
            attempt: (n % 5) as usize + 1,
            status: "oom_killed".to_string(),
        },
        _ => JobEvent::ItemDeadLettered {
            entry: DlqEntry {
                task,
                task_id: format!("t{task}"),
                wave,
                attempts: 3,
                failures: vec![FailureRecord {
                    wave,
                    attempt: 1,
                    partial_runtime_s: x,
                    resource: x * 0.5,
                    status: "timeout_killed".to_string(),
                    backoff_s: x.min(60.0),
                }],
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn truncated_journal_loads_without_panic_and_heals(
        codes in proptest::collection::vec((0u8..5, 0u64..10_000, 0.0f64..1e6), 0..25),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = case_path("trunc");
        let mut journal = Journal::open(&path).unwrap();
        let entries: Vec<JournalEntry> = codes
            .iter()
            .enumerate()
            .map(|(i, (c, n, x))| JournalEntry {
                seq: i as u64 + 1,
                event: synth_event(*c, *n, *x),
            })
            .collect();
        for e in &entries {
            journal.append(e).unwrap();
        }
        drop(journal);

        // Truncate at an arbitrary byte offset — a crash can cut a line
        // anywhere — and compute the exactly-expected surviving prefix.
        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let mut expected = 0usize;
        let mut expect_torn = 0u64;
        let mut start = 0usize;
        for e in &entries {
            let line_len = serde_json::to_string(e).unwrap().len();
            let end = start + line_len;
            if cut >= end {
                expected += 1;
            } else if cut > start {
                expect_torn = 1;
            }
            start = end + 1; // newline
        }

        let load = Journal::load(&path).unwrap();
        prop_assert_eq!(load.entries.len(), expected);
        prop_assert_eq!(&load.entries[..], &entries[..expected]);
        prop_assert_eq!(load.torn_lines, expect_torn);

        // Healing: re-open and append — the new entry must parse cleanly
        // regardless of how the tail was torn.
        let sentinel = JournalEntry {
            seq: 999_999,
            event: JobEvent::CheckpointLoaded { wave_cursor: 77 },
        };
        let mut journal = Journal::open(&path).unwrap();
        journal.append(&sentinel).unwrap();
        drop(journal);
        let load = Journal::load(&path).unwrap();
        prop_assert_eq!(load.entries.len(), expected + 1);
        prop_assert_eq!(load.entries.last().unwrap(), &sentinel);
        prop_assert_eq!(load.torn_lines, expect_torn);
    }
}

/// Rewrite a journal without its `CheckpointCreated` / `CheckpointDelta`
/// events, forcing the next `open` to replay from genesis.
fn strip_checkpoints(path: &PathBuf, out: &PathBuf) {
    let text = std::fs::read_to_string(path).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter(|l| {
            let entry: JournalEntry = serde_json::from_str(l).unwrap();
            !matches!(
                entry.event,
                JobEvent::CheckpointCreated { .. } | JobEvent::CheckpointDelta { .. }
            )
        })
        .collect();
    std::fs::write(out, kept.join("\n") + "\n").unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Group commit loses exactly the unsynced suffix on a crash: every
    /// entry acked by the policy (batch boundary or explicit barrier —
    /// the engine barriers after every checkpoint) survives, no entry
    /// past the last sync point does, and the tail is never torn (a
    /// whole batch is one write).
    #[test]
    fn group_commit_crash_loses_only_unsynced_suffix(
        codes in proptest::collection::vec((0u8..5, 0u64..10_000, 0.0f64..1e6), 1..30),
        batch in 1usize..6,
        barrier_every in proptest::option::of(1usize..7),
        barrier_policy in 0u8..2,
    ) {
        let path = case_path("groupcommit");
        let policy = if barrier_policy == 1 {
            SyncPolicy::Barrier
        } else {
            SyncPolicy::Batch(batch)
        };
        let mut journal = Journal::open_with(&path, policy).unwrap();
        let entries: Vec<JournalEntry> = codes
            .iter()
            .enumerate()
            .map(|(i, (c, n, x))| JournalEntry {
                seq: i as u64 + 1,
                event: synth_event(*c, *n, *x),
            })
            .collect();
        // Mirror the writer's group-commit model: `acked` is the prefix
        // the disk must hold after a crash.
        let mut acked = 0usize;
        let mut pending = 0usize;
        for (i, e) in entries.iter().enumerate() {
            journal.append(e).unwrap();
            pending += 1;
            if let SyncPolicy::Batch(n) = policy {
                if pending >= n {
                    acked = i + 1;
                    pending = 0;
                }
            }
            if barrier_every.is_some_and(|k| (i + 1) % k == 0) {
                journal.barrier().unwrap();
                acked = i + 1;
                pending = 0;
            }
        }
        // Crash: no Drop flush, the staged suffix dies with the process.
        std::mem::forget(journal);

        let load = Journal::load(&path).unwrap();
        prop_assert_eq!(load.torn_lines, 0, "group commit never tears a tail");
        prop_assert_eq!(load.entries.len(), acked);
        prop_assert_eq!(&load.entries[..], &entries[..acked]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Delta-checkpoint reconstruction (full base + deltas) resumes to a
    /// state `to_bits`-indistinguishable from replaying the journal from
    /// genesis with every checkpoint stripped.
    #[test]
    fn delta_resume_equals_replay_from_genesis(
        seed in 0u64..1000,
        full_every in 1u64..4,
        interrupted_at in 2usize..4,
    ) {
        let spec = CampaignSpec {
            job_id: "prop-delta".to_string(),
            n_tasks: 2,
            budget: 4,
            seed,
            checkpoint_every: 1,
            checkpoint_full_every: full_every,
            ..CampaignSpec::default()
        };
        let path = case_path("delta");
        let (t0, _s0) = Telemetry::ring(1024);
        let mut engine = JobEngine::start(spec, &path, t0).unwrap();
        for _ in 0..interrupted_at {
            engine.run_wave().unwrap();
        }
        drop(engine); // abandon without pause: no final checkpoint

        // The cadence must actually have produced a delta to reconstruct.
        let load = Journal::load(&path).unwrap();
        prop_assert!(
            load.entries
                .iter()
                .any(|e| matches!(e.event, JobEvent::CheckpointDelta { .. })),
            "checkpoint_full_every={} over {} waves must journal a delta",
            full_every,
            interrupted_at,
        );

        // Path A: resume from full base + deltas.
        let path_a = case_path("delta-a");
        std::fs::copy(&path, &path_a).unwrap();
        let (ta, _sa) = Telemetry::ring(1024);
        let mut a = JobEngine::open(&path_a, ta).unwrap();
        let summary_a = a.run_to_completion().unwrap().clone();

        // Path B: genesis replay with every checkpoint stripped.
        let path_b = case_path("delta-b");
        strip_checkpoints(&path, &path_b);
        let (tb, _sb) = Telemetry::ring(1024);
        let mut b = JobEngine::open(&path_b, tb).unwrap();
        let summary_b = b.run_to_completion().unwrap().clone();

        prop_assert_eq!(summary_a, summary_b);
        for task in 0..2 {
            prop_assert_eq!(
                a.suggestion_trace(task).unwrap(),
                b.suggestion_trace(task).unwrap()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn resume_from_checkpoint_equals_replay_from_genesis(
        seed in 0u64..1000,
        checkpoint_every in 1u64..4,
        interrupted_at in 1usize..4,
    ) {
        let spec = CampaignSpec {
            job_id: "prop-campaign".to_string(),
            n_tasks: 2,
            budget: 4,
            seed,
            checkpoint_every,
            ..CampaignSpec::default()
        };
        let path = case_path("equiv");
        let (t0, _s0) = Telemetry::ring(1024);
        let mut engine = JobEngine::start(spec, &path, t0).unwrap();
        for _ in 0..interrupted_at {
            engine.run_wave().unwrap();
        }
        drop(engine); // abandon without pause: no final checkpoint

        // Path A: resume normally (last checkpoint + journal replay).
        let path_a = case_path("equiv-a");
        std::fs::copy(&path, &path_a).unwrap();
        let (ta, _sa) = Telemetry::ring(1024);
        let mut a = JobEngine::open(&path_a, ta).unwrap();
        let summary_a = a.run_to_completion().unwrap().clone();

        // Path B: same journal with every checkpoint removed — the
        // engine must replay from genesis to the identical state.
        let path_b = case_path("equiv-b");
        strip_checkpoints(&path, &path_b);
        let (tb, _sb) = Telemetry::ring(1024);
        let mut b = JobEngine::open(&path_b, tb).unwrap();
        let summary_b = b.run_to_completion().unwrap().clone();

        prop_assert_eq!(summary_a, summary_b);
        for task in 0..2 {
            prop_assert_eq!(
                a.suggestion_trace(task).unwrap(),
                b.suggestion_trace(task).unwrap()
            );
        }
    }
}

#[test]
fn checkpoint_event_round_trips_through_journal() {
    // A full campaign journal — including embedded checkpoints with real
    // tuner snapshots — must reload to byte-identical entries.
    let path = case_path("roundtrip");
    let (t, _s) = Telemetry::ring(1024);
    let spec = CampaignSpec {
        n_tasks: 2,
        budget: 3,
        checkpoint_every: 1,
        ..CampaignSpec::default()
    };
    let mut engine = JobEngine::start(spec, &path, t).unwrap();
    engine.run_to_completion().unwrap();
    drop(engine);

    let load = Journal::load(&path).unwrap();
    assert_eq!(load.torn_lines, 0);
    assert!(load
        .entries
        .iter()
        .any(|e| matches!(e.event, JobEvent::CheckpointCreated { .. })));
    for entry in &load.entries {
        let line = serde_json::to_string(entry).unwrap();
        let back: JournalEntry = serde_json::from_str(&line).unwrap();
        assert_eq!(&back, entry);
    }
}
