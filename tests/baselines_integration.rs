//! Baseline tuners against the simulator: every strategy completes a
//! budget producing valid configurations, and `otune` is competitive.

use otune_baselines::{CherryPick, Dac, Locat, RandomSearch, Rfhoc, Tuneful, Tuner};
use otune_bo::Observation;
use otune_core::prelude::*;

fn run_baseline(tuner: &mut dyn Tuner, job: &SimJob, space: &ConfigSpace, budget: u64) -> f64 {
    let mut history: Vec<Observation> = Vec::new();
    let mut best = f64::INFINITY;
    for t in 0..budget {
        let cfg = tuner.suggest(&history, &[]);
        space
            .validate(&cfg)
            .unwrap_or_else(|e| panic!("{}: invalid config: {e}", tuner.name()));
        let r = job.run(&cfg, t);
        best = best.min(r.execution_cost());
        history.push(Observation {
            failed: false,
            config: cfg,
            objective: r.execution_cost().sqrt(),
            runtime: r.runtime_s,
            resource: r.resource,
            context: vec![],
        });
    }
    best
}

#[test]
fn all_baselines_complete_a_budget_with_valid_configs() {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount));
    let budget = 12;

    let mut tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RandomSearch::new(space.clone(), 1)),
        Box::new(Rfhoc::new(space.clone(), 1)),
        Box::new(Dac::new(space.clone(), 1)),
        Box::new(CherryPick::new(space.clone(), None, 1)),
        Box::new(Tuneful::new(space.clone(), 1)),
        Box::new(Locat::new(space.clone(), 1)),
    ];
    for t in &mut tuners {
        let best = run_baseline(t.as_mut(), &job, &space, budget);
        assert!(best.is_finite() && best > 0.0, "{}", t.name());
    }
}

#[test]
fn otune_is_competitive_with_random_search() {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::KMeans));
    let budget = 15u64;

    // Average over seeds to suppress noise.
    let mut random_best = 0.0;
    let mut ours_best = 0.0;
    for seed in 1..=2u64 {
        let mut rs = RandomSearch::new(space.clone(), seed);
        random_best += run_baseline(&mut rs, &job, &space, budget) / 2.0;

        let mut tuner = OnlineTuner::new(
            space.clone(),
            TunerOptions {
                beta: 0.5,
                budget: budget as usize,
                enable_meta: false,
                seed,
                ..TunerOptions::default()
            },
        );
        let mut best = f64::INFINITY;
        for t in 0..budget {
            let cfg = tuner.suggest(&[]).unwrap();
            let r = job.run(&cfg, seed * 99 + t);
            best = best.min(r.execution_cost());
            tuner.observe(cfg, r.runtime_s, r.resource, &[]).unwrap();
        }
        ours_best += best / 2.0;
    }
    assert!(
        ours_best < random_best * 1.2,
        "otune at least matches random: {ours_best} vs {random_best}"
    );
}
