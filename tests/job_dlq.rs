//! DLQ scenario tests: scripted fault profiles force one task past
//! `max_retries` and the engine must dead-letter it — with its full
//! failure history and the deterministic backoff schedule — while the
//! rest of the campaign proceeds unaffected.

use otune_jobs::{CampaignSpec, FleetSummary, JobEngine, TaskFault};
use otune_space::{spark_space, ClusterScale};
use otune_sparksim::FaultKind;
use otune_telemetry::{metric, Telemetry};
use std::path::PathBuf;

fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("otune-jobdlq-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&path);
    path
}

/// Task 1 is scripted to OOM on waves 2, 3, and 4 — three consecutive
/// failures against `max_retries: 3`, so it dead-letters at wave 4.
/// `t_max_factor` is generous so no natural timeout kill interferes.
fn doomed_spec() -> CampaignSpec {
    CampaignSpec {
        job_id: "dlq-campaign".to_string(),
        n_tasks: 3,
        budget: 8,
        seed: 11,
        t_max_factor: 10.0,
        max_retries: 3,
        backoff_base_s: 1.5,
        backoff_factor: 2.0,
        backoff_cap_s: 4.0,
        checkpoint_every: 3,
        scripted_faults: vec![
            TaskFault {
                task: 1,
                wave: 2,
                kind: FaultKind::ExecutorOom,
            },
            TaskFault {
                task: 1,
                wave: 3,
                kind: FaultKind::ExecutorOom,
            },
            TaskFault {
                task: 1,
                wave: 4,
                kind: FaultKind::ExecutorOom,
            },
        ],
        ..CampaignSpec::default()
    }
}

#[test]
fn task_past_max_retries_lands_in_dlq_with_full_history() {
    let (telemetry, _sink) = Telemetry::ring(4096);
    let path = journal_path("history");
    let mut engine = JobEngine::start(doomed_spec(), &path, telemetry).unwrap();
    let summary = engine.run_to_completion().unwrap().clone();

    // The campaign completed all 8 waves despite the dead task.
    assert!(engine.is_completed());
    assert_eq!(summary.waves, 8);
    assert_eq!(summary.dead_lettered, 1);

    // Exactly one DLQ entry: task 1, dead at wave 4 after 3 attempts.
    assert_eq!(engine.dlq().len(), 1);
    let entry = &engine.dlq()[0];
    assert_eq!(entry.task, 1);
    assert_eq!(entry.wave, 4);
    assert_eq!(entry.attempts, 3);

    // Full failure history, oldest first, with the deterministic backoff
    // schedule min(cap, base × factor^(attempt−1)) = [1.5, 3.0, 4.0].
    assert_eq!(entry.failures.len(), 3);
    let waves: Vec<u64> = entry.failures.iter().map(|f| f.wave).collect();
    let attempts: Vec<usize> = entry.failures.iter().map(|f| f.attempt).collect();
    let backoffs: Vec<f64> = entry.failures.iter().map(|f| f.backoff_s).collect();
    assert_eq!(waves, vec![2, 3, 4]);
    assert_eq!(attempts, vec![1, 2, 3]);
    assert_eq!(backoffs, vec![1.5, 3.0, 4.0]);
    for f in &entry.failures {
        assert_eq!(f.status, "oom_killed");
        assert!(f.partial_runtime_s > 0.0);
    }

    // The dead task observed waves 0–4 (2 successes + 3 censored
    // failures) and then left the wave rotation.
    let dead = &summary.tasks[1];
    assert!(dead.dead_lettered);
    assert_eq!(dead.n_observations, 5);
    assert_eq!(dead.n_failures, 3);

    // Surviving tasks ran the full budget, failure-free.
    for i in [0usize, 2] {
        let t = &summary.tasks[i];
        assert!(!t.dead_lettered, "task {i} must not be dead-lettered");
        assert_eq!(t.n_observations, 8);
        assert_eq!(t.n_failures, 0);
        assert!(t.best_runtime_s.is_some());
    }

    // Telemetry: 2 retries scheduled, 1 dead letter, 8 waves.
    let snap = engine.telemetry().snapshot().unwrap();
    assert_eq!(snap.counters[metric::JOB_RETRIES], 2);
    assert_eq!(snap.counters[metric::JOB_DEAD_LETTERS], 1);
    assert_eq!(snap.counters[metric::JOB_WAVES], 8);
    assert!(snap.counters[metric::JOB_CHECKPOINTS] >= 1);
}

#[test]
fn dlq_leaves_surviving_tasks_bitwise_unaffected() {
    let space = spark_space(ClusterScale::hibench());
    // Campaign A: task 1 dead-letters. Campaign B: same seed, no faults.
    let (ta, _sa) = Telemetry::ring(4096);
    let mut a = JobEngine::start(doomed_spec(), &journal_path("faulty"), ta).unwrap();
    a.run_to_completion().unwrap();

    let clean_spec = CampaignSpec {
        scripted_faults: Vec::new(),
        ..doomed_spec()
    };
    let (tb, _sb) = Telemetry::ring(4096);
    let mut b = JobEngine::start(clean_spec, &journal_path("clean"), tb).unwrap();
    b.run_to_completion().unwrap();

    // Tasks 0 and 2 never failed in either campaign: their suggestion
    // traces — and thus their incumbents — must be bitwise identical.
    for task in [0usize, 2] {
        let trace_a = a.suggestion_trace(task).unwrap();
        let trace_b = b.suggestion_trace(task).unwrap();
        assert_eq!(trace_a.len(), trace_b.len());
        for (wave, (ca, cb)) in trace_a.iter().zip(&trace_b).enumerate() {
            let bits_a: Vec<u64> = space.encode(ca).iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u64> = space.encode(cb).iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits_a, bits_b,
                "task {task} diverged at wave {wave} under a sibling's DLQ"
            );
        }
    }
    let sa = a.summary().unwrap();
    let sb = b.summary().unwrap();
    for task in [0usize, 2] {
        assert_eq!(
            sa.tasks[task].best_runtime_s.map(f64::to_bits),
            sb.tasks[task].best_runtime_s.map(f64::to_bits),
            "task {task} incumbent changed under a sibling's DLQ"
        );
    }
}

#[test]
fn pause_resume_preserves_dlq_and_reproduces_uninterrupted_summary() {
    // Uninterrupted golden run.
    let (tg, _sg) = Telemetry::ring(4096);
    let mut golden = JobEngine::start(doomed_spec(), &journal_path("golden"), tg).unwrap();
    let golden_summary: FleetSummary = golden.run_to_completion().unwrap().clone();

    // Interrupted run: drive through the DLQ event (waves 0–4), pause,
    // reopen from the journal, finish.
    let path = journal_path("paused");
    let (t1, _s1) = Telemetry::ring(4096);
    let mut first = JobEngine::start(doomed_spec(), &path, t1).unwrap();
    for _ in 0..5 {
        first.run_wave().unwrap().unwrap();
    }
    assert_eq!(first.dlq().len(), 1);
    first.pause().unwrap();
    drop(first);

    let (t2, _s2) = Telemetry::ring(4096);
    let mut resumed = JobEngine::open(&path, t2).unwrap();
    assert_eq!(resumed.wave_cursor(), 5);
    assert_eq!(resumed.dlq().len(), 1, "DLQ must survive the resume");
    assert_eq!(resumed.dlq()[0].failures.len(), 3);
    let resumed_summary = resumed.run_to_completion().unwrap().clone();

    assert_eq!(resumed_summary, golden_summary);
    let snap = resumed.telemetry().snapshot().unwrap();
    assert_eq!(snap.counters[metric::JOB_RESUMES], 1);
}
