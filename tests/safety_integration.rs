//! Safe exploration (§4.2) against the simulator: the safe region must
//! reduce constraint violations during online tuning.

use otune_core::prelude::*;

fn violations(task: HibenchTask, enable_safety: bool, seed: u64) -> (usize, usize) {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(task));
    let default_cfg = space.default_configuration();
    let baseline = job.run(&default_cfg, 0);
    let t_max = 2.0 * baseline.runtime_s;

    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            t_max: Some(t_max),
            budget: 18,
            enable_safety,
            enable_meta: false,
            seed,
            ..TunerOptions::default()
        },
    );
    tuner.seed_observation(default_cfg, baseline.runtime_s, baseline.resource, &[]);
    let mut bad = 0;
    let mut total = 0;
    for t in 0..18u64 {
        let cfg = tuner.suggest(&[]).expect("protocol");
        let r = job.run(&cfg, seed * 777 + t);
        total += 1;
        if r.runtime_s > t_max {
            bad += 1;
        }
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    (bad, total)
}

#[test]
fn safe_region_reduces_violations_on_memory_hungry_tasks() {
    let mut with_safety = 0;
    let mut without = 0;
    for seed in 1..=3 {
        with_safety += violations(HibenchTask::TeraSort, true, seed).0;
        without += violations(HibenchTask::TeraSort, false, seed).0;
    }
    assert!(
        with_safety <= without,
        "safety must not increase violations: {with_safety} vs {without}"
    );
}

#[test]
fn most_suggestions_are_safe_with_safety_on() {
    let (bad, total) = violations(HibenchTask::WordCount, true, 2);
    assert!(
        (bad as f64) < total as f64 * 0.5,
        "safe tuning keeps most runs feasible: {bad}/{total}"
    );
}

#[test]
fn r_max_constraint_is_hard_for_bo_suggestions() {
    // With an analytic resource cap, all BO-sourced evaluations must
    // respect it exactly (it is white-box).
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::Sort));
    let default_cfg = space.default_configuration();
    let baseline = job.run(&default_cfg, 0);
    let r_max = baseline.resource * 1.5;

    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            r_max: Some(r_max),
            budget: 15,
            n_agd: 0, // AGD steps are exploratory and may leave the cap
            enable_meta: false,
            seed: 4,
            ..TunerOptions::default()
        },
    );
    tuner.seed_observation(default_cfg, baseline.runtime_s, baseline.resource, &[]);
    let mut checked = 0;
    for t in 0..15u64 {
        let cfg = tuner.suggest(&[]).expect("protocol");
        let r = job.run(&cfg, 31 + t);
        // Initial-design probes may exceed the cap; BO suggestions must not.
        if t >= 4 {
            assert!(
                r.resource <= r_max + 1e-9,
                "iteration {t}: resource {} exceeds cap {r_max}",
                r.resource
            );
            checked += 1;
        }
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    assert!(checked >= 10);
}
