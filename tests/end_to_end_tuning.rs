//! End-to-end: the full online tuning loop against the Spark simulator.

use otune_core::prelude::*;

fn drive(tuner: &mut OnlineTuner, job: &SimJob, budget: u64, seed: u64) -> Vec<f64> {
    let mut costs = Vec::new();
    for t in 0..budget {
        let cfg = tuner.suggest(&[]).expect("alternating suggest/observe");
        let r = job.run(&cfg, seed * 1000 + t);
        costs.push(r.execution_cost());
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending suggestion");
    }
    costs
}

#[test]
fn tuning_beats_the_default_configuration() {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount));
    let default_cfg = space.default_configuration();
    let baseline = job.run(&default_cfg, 0);

    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            t_max: Some(2.0 * baseline.runtime_s),
            budget: 18,
            enable_meta: false,
            seed: 1,
            ..TunerOptions::default()
        },
    );
    tuner.seed_observation(default_cfg, baseline.runtime_s, baseline.resource, &[]);
    let costs = drive(&mut tuner, &job, 18, 1);

    let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        best < baseline.execution_cost() * 0.9,
        "best {best} vs baseline {}",
        baseline.execution_cost()
    );
    // The tuner's own view of its best agrees with the observed stream.
    let tuner_best = tuner.best().unwrap();
    assert!(tuner_best.objective.is_finite());
    assert_eq!(tuner.history().len(), 19);
}

#[test]
fn runtime_objective_prefers_faster_configs_than_resource_objective() {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::Sort));

    let run_with_beta = |beta: f64| {
        let mut tuner = OnlineTuner::new(
            space.clone(),
            TunerOptions {
                beta,
                budget: 15,
                enable_meta: false,
                seed: 3,
                ..TunerOptions::default()
            },
        );
        drive(&mut tuner, &job, 15, 2);
        let best = tuner.best().unwrap();
        (best.runtime, best.resource)
    };

    let (rt_fast, res_fast) = run_with_beta(1.0);
    let (rt_cheap, res_cheap) = run_with_beta(0.0);
    assert!(
        rt_fast < rt_cheap,
        "β=1 finds faster configs: {rt_fast} vs {rt_cheap}"
    );
    assert!(
        res_cheap < res_fast,
        "β=0 finds cheaper configs: {res_cheap} vs {res_fast}"
    );
}

#[test]
fn datasize_context_keeps_surrogates_consistent_under_drift() {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount));
    let datasize = DataSizeModel::hourly(100.0, 5);

    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            budget: 12,
            enable_meta: false,
            seed: 5,
            ..TunerOptions::default()
        },
    );
    for t in 0..12u64 {
        let ds = datasize.size_at(t);
        let ctx = vec![ds / 100.0];
        let cfg = tuner.suggest(&ctx).expect("protocol");
        let r = job.run_with_datasize(&cfg, ds, t);
        tuner
            .observe(cfg, r.runtime_s, r.resource, &ctx)
            .expect("pending");
    }
    assert_eq!(tuner.history().len(), 12);
    assert!(tuner.best().is_some());
}

#[test]
fn budget_then_stopped_configuration_is_stable() {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::KMeans));
    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            budget: 6,
            enable_meta: false,
            seed: 7,
            ..TunerOptions::default()
        },
    );
    drive(&mut tuner, &job, 6, 3);
    let best_cfg = tuner.best().unwrap().config.clone();
    // Post-budget, the same configuration is served every period.
    for t in 0..4u64 {
        let cfg = tuner.suggest(&[]).unwrap();
        assert_eq!(cfg, best_cfg);
        let r = job.run(&cfg, 900 + t);
        tuner.observe(cfg, r.runtime_s, r.resource, &[]).unwrap();
    }
    assert!(tuner.is_stopped());
}
