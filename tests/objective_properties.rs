//! Property-based tests for the generalized objective (Eq. 1) and its
//! interaction with the analytic resource function and AGD's gradient
//! formula (Eq. 9).

use otune_core::objective::{resource_fn_for, Constraints, Objective};
use otune_core::prelude::*;
use proptest::prelude::*;

proptest! {
    /// f(x) = T^β R^(1-β) interpolates monotonically between T and R.
    #[test]
    fn objective_is_between_t_and_r(
        t in 1.0f64..1e5,
        r in 1.0f64..1e4,
        beta in 0.0f64..=1.0,
    ) {
        let f = Objective::new(beta).eval(t, r);
        let (lo, hi) = (t.min(r), t.max(r));
        prop_assert!(f >= lo - 1e-9 && f <= hi + 1e-9, "f = {f} outside [{lo}, {hi}]");
    }

    /// The objective is monotone in both arguments for any β.
    #[test]
    fn objective_monotone(
        t in 1.0f64..1e5,
        r in 1.0f64..1e4,
        beta in 0.01f64..=0.99,
        bump in 1.01f64..3.0,
    ) {
        let o = Objective::new(beta);
        prop_assert!(o.eval(t * bump, r) > o.eval(t, r));
        prop_assert!(o.eval(t, r * bump) > o.eval(t, r));
    }

    /// Eq. 9's analytic partial derivative matches a numerical derivative
    /// of f = T^β R^(1-β) when T and R vary along a coordinate.
    #[test]
    fn eq9_gradient_matches_numerical(
        beta in 0.05f64..=0.95,
        t0 in 10.0f64..1000.0,
        r0 in 5.0f64..500.0,
        dt in -5.0f64..5.0,
        dr in -2.0f64..2.0,
    ) {
        // T(x) = t0 + dt·x, R(x) = r0 + dr·x around x = 0.
        let f = |x: f64| (t0 + dt * x).powf(beta) * (r0 + dr * x).powf(1.0 - beta);
        let h = 1e-5;
        let numerical = (f(h) - f(-h)) / (2.0 * h);
        let ratio: f64 = t0 / r0;
        let analytic = beta * ratio.powf(beta - 1.0) * dt + (1.0 - beta) * ratio.powf(beta) * dr;
        let scale = numerical.abs().max(analytic.abs()).max(1e-6);
        prop_assert!(
            (numerical - analytic).abs() / scale < 1e-3,
            "numerical {numerical} vs Eq.9 {analytic}"
        );
    }

    /// The Spark resource function is monotone in every resource parameter
    /// and strictly positive.
    #[test]
    fn resource_fn_monotone_in_resources(u in proptest::collection::vec(0.0f64..1.0, 30)) {
        let space = spark_space(ClusterScale::hibench());
        let f = resource_fn_for(&space);
        let cfg = space.decode(&u);
        let base = f(&cfg);
        prop_assert!(base > 0.0);
        for p in [
            SparkParam::ExecutorInstances,
            SparkParam::ExecutorCores,
            SparkParam::ExecutorMemory,
        ] {
            let mut up = u.clone();
            up[p.index()] = 1.0;
            let bumped = f(&space.decode(&up));
            prop_assert!(bumped >= base - 1e-9, "{p:?}: {bumped} < {base}");
        }
    }

    /// Constraints::satisfied is consistent with Observation::is_feasible.
    #[test]
    fn constraint_checks_agree(
        rt in 0.0f64..1e4,
        rs in 0.0f64..1e3,
        t_max in proptest::option::of(1.0f64..1e4),
        r_max in proptest::option::of(1.0f64..1e3),
    ) {
        let c = Constraints { t_max, r_max };
        let obs = otune_bo::Observation {
            failed: false,
            config: spark_space(ClusterScale::hibench()).default_configuration(),
            objective: 1.0,
            runtime: rt,
            resource: rs,
            context: vec![],
        };
        prop_assert_eq!(c.satisfied(rt, rs), obs.is_feasible(t_max, r_max));
    }
}
