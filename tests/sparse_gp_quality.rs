//! Suggestion-quality regression gate for the local-subset sparse GP.
//!
//! The sparse surrogate is an approximation — unlike the SIMD-blocked
//! kernels it is *not* bitwise-equal to the exact path — so it is gated
//! behaviorally instead: across full 30-iteration online campaigns on
//! several seeds, tuning with the sparse GP active (threshold lowered so
//! it actually engages) must reach a final incumbent within a small
//! tolerance of the exact GP's, and must actually have taken the sparse
//! path.

use otune_core::prelude::*;
use otune_core::telemetry::metric;
use otune_core::SparseGpConfig;
use std::sync::Arc;

fn toy_space() -> ConfigSpace {
    use otune_space::Parameter;
    ConfigSpace::new(vec![
        Parameter::int("n", 1, 50, 10),
        Parameter::int("m", 1, 32, 8),
    ])
}

fn toy_eval(c: &Configuration) -> (f64, f64) {
    let n = c[0].as_int().unwrap() as f64;
    let m = c[1].as_int().unwrap() as f64;
    (400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
}

fn toy_resource(c: &Configuration) -> f64 {
    toy_eval(c).1
}

/// Run one full campaign; returns the best objective and the number of
/// sparse activations recorded.
fn campaign(seed: u64, sparse: Option<SparseGpConfig>) -> (f64, u64) {
    let iterations = 30;
    let opts = TunerOptions {
        budget: iterations,
        seed,
        sparse_gp: sparse,
        ..TunerOptions::default()
    };
    let mut tuner = OnlineTuner::with_resource_fn(toy_space(), opts, Arc::new(toy_resource));
    let telemetry = Telemetry::new(Box::new(otune_core::telemetry::NullSink));
    tuner.set_telemetry(telemetry.clone());
    for _ in 0..iterations {
        let cfg = tuner.suggest(&[]).unwrap();
        let (rt, r) = toy_eval(&cfg);
        tuner.observe(cfg, rt, r, &[]).unwrap();
    }
    let best = tuner.best().expect("campaign produced observations");
    let snap = telemetry.snapshot().unwrap();
    let activations = snap
        .counters
        .get(metric::SUBSET_GP_ACTIVATIONS)
        .copied()
        .unwrap_or(0);
    (best.objective, activations)
}

#[test]
fn sparse_campaigns_match_exact_incumbent_within_tolerance() {
    // Threshold low enough that a 30-iteration history activates the
    // subset selection for roughly the second half of the campaign.
    let sparse = SparseGpConfig {
        threshold: 16,
        subset_size: 12,
    };
    let mut ratios = Vec::new();
    for seed in [3, 11, 42] {
        let (exact_best, exact_act) = campaign(seed, None);
        let (sparse_best, sparse_act) = campaign(seed, Some(sparse));
        assert_eq!(exact_act, 0, "exact arm must never take the sparse path");
        assert!(
            sparse_act > 0,
            "sparse arm never activated at seed {seed} — threshold misconfigured?"
        );
        // Per-seed: the sparse incumbent may differ but not collapse.
        assert!(
            sparse_best <= exact_best * 1.30,
            "seed {seed}: sparse incumbent {sparse_best:.2} vs exact {exact_best:.2}"
        );
        ratios.push(sparse_best / exact_best);
    }
    // In aggregate the approximation must be close to free.
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean <= 1.10,
        "mean sparse/exact incumbent ratio too high: {mean:.3} ({ratios:?})"
    );
}

#[test]
fn sparse_flag_off_is_default() {
    // Guard against the env flag silently flipping defaults in tests.
    let opts = TunerOptions::default();
    if std::env::var("OTUNE_SPARSE_GP").is_err() {
        assert!(opts.sparse_gp.is_none());
    }
}
