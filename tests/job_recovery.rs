//! Kill-anywhere crash-recovery suite for `otune tune-serve`.
//!
//! The real binary is killed at every wave, checkpoint, and
//! journal-append boundary — via the `OTUNE_CRASH_AT` hook, which
//! `std::process::abort()`s right after the matching fsynced append
//! (kill -9 semantics: no destructors, no unwinding) — plus a genuine
//! SIGKILL mid-serve and a mid-append byte truncation. In every case the
//! resumed campaign must reproduce the uninterrupted golden run's fleet
//! summary and per-task suggestion traces `to_bits`-identically.

use otune_jobs::{FleetSummary, JobEngine, Journal, CRASH_ENV};
use otune_space::{spark_space, ClusterScale};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;

const TASKS: &str = "2";
const BUDGET: &str = "3";
const SEED: &str = "13";

fn job_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("otune-jobrec-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `otune tune-serve --auto` against `journal`, optionally arming the
/// crash hook and overriding the journal sync policy / checkpoint mode.
fn run_cli_opts(
    journal: &Path,
    crash: Option<&str>,
    sync: Option<&str>,
    full_every: Option<&str>,
) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_otune"));
    cmd.args([
        "tune-serve",
        "--journal",
        journal.to_str().unwrap(),
        "--tasks",
        TASKS,
        "--budget",
        BUDGET,
        "--seed",
        SEED,
        "--checkpoint-every",
        "1",
        "--auto",
    ]);
    if let Some(policy) = sync {
        cmd.args(["--sync", policy]);
    }
    if let Some(n) = full_every {
        cmd.args(["--full-every", n]);
    }
    cmd.env_remove(CRASH_ENV);
    if let Some(point) = crash {
        cmd.env(CRASH_ENV, point);
    }
    cmd.output().expect("spawn otune")
}

fn run_cli(journal: &Path, crash: Option<&str>) -> std::process::Output {
    run_cli_opts(journal, crash, None, None)
}

/// The uninterrupted run's summary, per-task encoded suggestion traces,
/// and total journal appends (the kill-anywhere enumeration bound).
struct GoldenRun {
    summary: FleetSummary,
    traces: Vec<Vec<Vec<u64>>>,
    n_appends: usize,
}

fn golden() -> &'static GoldenRun {
    static GOLDEN: OnceLock<GoldenRun> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let journal = job_dir("golden").join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);
        let out = run_cli(&journal, None);
        assert!(out.status.success(), "golden run failed: {out:?}");
        let n_appends = Journal::load(&journal).unwrap().entries.len();
        let (summary, traces) = inspect(&journal);
        GoldenRun {
            summary,
            traces,
            n_appends,
        }
    })
}

/// Open a finished journal in-process and extract the summary plus the
/// per-task suggestion traces, encoded to mantissa bits.
fn inspect(journal: &Path) -> (FleetSummary, Vec<Vec<Vec<u64>>>) {
    let space = spark_space(ClusterScale::hibench());
    let (telemetry, _sink) = otune_core::telemetry::Telemetry::ring(4096);
    let mut engine = JobEngine::open(journal, telemetry).expect("journal resumes");
    assert!(engine.is_completed(), "campaign must have completed");
    let summary = engine.summary().unwrap().clone();
    let traces = (0..engine.n_tasks())
        .map(|task| {
            engine
                .suggestion_trace(task)
                .unwrap()
                .iter()
                .map(|c| space.encode(c).iter().map(|v| v.to_bits()).collect())
                .collect()
        })
        .collect();
    (summary, traces)
}

/// Kill the campaign at `crash`, optionally tear bytes off the journal
/// tail, resume, and demand bitwise equality with the golden run.
fn crash_resume_and_verify(name: &str, crash: &str, tear_bytes: Option<u64>) {
    let gold = golden();
    let journal = job_dir(name).join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    let out = run_cli(&journal, Some(crash));
    assert!(
        !out.status.success(),
        "{name}: the armed run must die at {crash}, got {out:?}"
    );
    if let Some(tear) = tear_bytes {
        // A torn append: the crash cut the write mid-line.
        let len = std::fs::metadata(&journal).unwrap().len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&journal)
            .unwrap();
        file.set_len(len.saturating_sub(tear)).unwrap();
    }

    let out = run_cli(&journal, None);
    assert!(out.status.success(), "{name}: resume failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("completed"),
        "{name}: resume must complete the campaign: {stdout}"
    );

    let (summary, traces) = inspect(&journal);
    assert_eq!(
        summary, gold.summary,
        "{name}: resumed summary diverged from the golden run"
    );
    assert_eq!(
        traces, gold.traces,
        "{name}: resumed suggestion traces diverged from the golden run"
    );
}

#[test]
fn kill_at_every_wave_boundary_resumes_bitwise() {
    let budget: u64 = BUDGET.parse().unwrap();
    for wave in 0..budget {
        crash_resume_and_verify(&format!("wave{wave}"), &format!("wave:{wave}"), None);
    }
}

#[test]
fn kill_at_every_checkpoint_boundary_resumes_bitwise() {
    let budget: u64 = BUDGET.parse().unwrap();
    // checkpoint_every = 1: a checkpoint lands after every wave except
    // the last (completion supersedes the final periodic checkpoint), at
    // cursors 1..budget.
    for cursor in 1..budget {
        crash_resume_and_verify(
            &format!("checkpoint{cursor}"),
            &format!("checkpoint:{cursor}"),
            None,
        );
    }
}

#[test]
fn kill_at_every_journal_append_resumes_bitwise() {
    // The golden journal's append count enumerates every boundary —
    // killing after each one covers "anywhere in the journal".
    let n = golden().n_appends;
    assert!(n >= 4, "campaign journals several appends, got {n}");
    for append in 1..=n {
        crash_resume_and_verify(
            &format!("append{append}"),
            &format!("append:{append}"),
            None,
        );
    }
}

#[test]
fn mid_append_byte_truncation_heals_and_resumes_bitwise() {
    // Tear into the middle of the final fsynced line: the loader must
    // skip the torn tail, `open` must heal it, and the resumed campaign
    // re-runs the lost wave to the identical outcome.
    crash_resume_and_verify("tear-wave", "wave:1", Some(7));
    // Tear a checkpoint line: resume falls back to the previous
    // checkpoint (or genesis) and replays forward.
    crash_resume_and_verify("tear-checkpoint", "checkpoint:2", Some(9));
}

#[test]
fn kill_at_every_fsync_boundary_resumes_bitwise_under_each_policy() {
    // Enumerate every fsync boundary under each group-commit policy:
    // arm `fsync:n` for n = 1, 2, … until a run has fewer than n fsyncs
    // and survives — that exhausts the boundary space for the policy.
    let gold = golden();
    for policy in ["every", "batch:3", "barrier"] {
        let slug = policy.replace(':', "-");
        let mut boundaries = 0u64;
        for n in 1..=200u64 {
            let journal = job_dir(&format!("fsync-{slug}-{n}")).join("journal.jsonl");
            let _ = std::fs::remove_file(&journal);
            let out = run_cli_opts(&journal, Some(&format!("fsync:{n}")), Some(policy), None);
            if out.status.success() {
                break; // the whole campaign pays fewer than n fsyncs
            }
            boundaries = n;
            let out = run_cli_opts(&journal, None, Some(policy), None);
            assert!(
                out.status.success(),
                "fsync:{n} under {policy}: resume failed: {out:?}"
            );
            let (summary, traces) = inspect(&journal);
            assert_eq!(
                summary, gold.summary,
                "fsync:{n} under {policy}: summary diverged"
            );
            assert_eq!(
                traces, gold.traces,
                "fsync:{n} under {policy}: traces diverged"
            );
        }
        assert!(
            (1..200).contains(&boundaries),
            "{policy}: expected a bounded, non-empty fsync enumeration, got {boundaries}"
        );
    }
}

#[test]
fn completed_journal_bytes_identical_across_sync_policies() {
    // Group commit changes fsync cadence, never journal content: an
    // uninterrupted campaign must write byte-identical journals under
    // every policy. (A fresh `every` run is the reference — the shared
    // golden journal accrues `JobResumed` lines from `inspect` calls.)
    let reference = job_dir("bytes-every").join("journal.jsonl");
    let _ = std::fs::remove_file(&reference);
    let out = run_cli_opts(&reference, None, Some("every"), None);
    assert!(out.status.success(), "every: run failed: {out:?}");
    let gold_bytes = std::fs::read(&reference).unwrap();
    for policy in ["batch:8", "barrier"] {
        let slug = policy.replace(':', "-");
        let journal = job_dir(&format!("bytes-{slug}")).join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);
        let out = run_cli_opts(&journal, None, Some(policy), None);
        assert!(out.status.success(), "{policy}: run failed: {out:?}");
        assert_eq!(
            std::fs::read(&journal).unwrap(),
            gold_bytes,
            "{policy}: journal bytes diverged from the default policy"
        );
    }
}

#[test]
fn delta_checkpoint_crash_resume_matches_golden() {
    // Delta-checkpoint mode: kill at each checkpoint boundary (cursor 1
    // has the full base, cursor 2 a delta over it) and at a mid-run wave;
    // the resumed campaign must still match the golden (all-full) run.
    let gold = golden();
    for crash in ["checkpoint:1", "checkpoint:2", "wave:1"] {
        let slug = crash.replace(':', "-");
        let journal = job_dir(&format!("delta-{slug}")).join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);
        let out = run_cli_opts(&journal, Some(crash), None, Some("2"));
        assert!(
            !out.status.success(),
            "delta mode: the armed run must die at {crash}, got {out:?}"
        );
        let out = run_cli_opts(&journal, None, None, Some("2"));
        assert!(
            out.status.success(),
            "delta {crash}: resume failed: {out:?}"
        );
        let (summary, traces) = inspect(&journal);
        assert_eq!(summary, gold.summary, "delta {crash}: summary diverged");
        assert_eq!(traces, gold.traces, "delta {crash}: traces diverged");
    }
}

#[test]
fn mid_compaction_kill_never_loses_the_journal() {
    // `otune jobs compact` killed at both of its crash points —
    // `compact:1` (tmp written, rename not yet done) and `compact:2`
    // (renamed, stale segments not yet removed) — must leave a journal
    // that still loads to the golden state; a clean re-compaction then
    // succeeds.
    let gold = golden();
    for crash in ["compact:1", "compact:2"] {
        let slug = crash.replace(':', "-");
        let dir = job_dir(&format!("compactkill-{slug}"));
        let journal = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&journal);
        let out = run_cli(&journal, None);
        assert!(out.status.success(), "{crash}: campaign failed: {out:?}");

        let jobs_compact = |crash: Option<&str>| {
            let mut cmd = Command::new(env!("CARGO_BIN_EXE_otune"));
            cmd.args(["jobs", "compact", "--journal-dir", dir.to_str().unwrap()]);
            cmd.env_remove(CRASH_ENV);
            if let Some(point) = crash {
                cmd.env(CRASH_ENV, point);
            }
            cmd.output().expect("spawn otune jobs compact")
        };
        let out = jobs_compact(Some(crash));
        assert!(
            !out.status.success(),
            "{crash}: the armed compaction must die, got {out:?}"
        );
        let (summary, traces) = inspect(&journal);
        assert_eq!(summary, gold.summary, "{crash}: state lost mid-compaction");
        assert_eq!(traces, gold.traces, "{crash}: traces lost mid-compaction");

        let out = jobs_compact(None);
        assert!(
            out.status.success(),
            "{crash}: re-compaction failed: {out:?}"
        );
        let (summary, traces) = inspect(&journal);
        assert_eq!(summary, gold.summary, "{crash}: state lost re-compacting");
        assert_eq!(traces, gold.traces, "{crash}: traces lost re-compacting");
    }
}

#[test]
fn sigkill_mid_serve_resumes_bitwise() {
    let gold = golden();
    let journal = job_dir("sigkill").join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Serve interactively, complete one wave, then SIGKILL the process —
    // no crash hook, no clean shutdown, no final checkpoint.
    let mut child = Command::new(env!("CARGO_BIN_EXE_otune"))
        .args([
            "tune-serve",
            "--journal",
            journal.to_str().unwrap(),
            "--tasks",
            TASKS,
            "--budget",
            BUDGET,
            "--seed",
            SEED,
            "--checkpoint-every",
            "1",
        ])
        .env_remove(CRASH_ENV)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn otune tune-serve");
    child.stdin.as_mut().unwrap().write_all(b"wave\n").unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    loop {
        let line = lines.next().expect("serve must answer before EOF").unwrap();
        if line.contains("wave 0 completed") {
            break;
        }
    }
    child.kill().unwrap(); // SIGKILL
    child.wait().unwrap();

    let out = run_cli(&journal, None);
    assert!(out.status.success(), "resume after SIGKILL failed: {out:?}");
    let (summary, traces) = inspect(&journal);
    assert_eq!(summary, gold.summary, "summary diverged after SIGKILL");
    assert_eq!(traces, gold.traces, "traces diverged after SIGKILL");
}
