//! Kill-and-resume crash recovery: a tuner that snapshots after every
//! observation and is "killed" and resumed at every iteration boundary
//! must reproduce the uninterrupted run's suggestion trace bitwise, and
//! the snapshot JSONL log must survive torn writes.

use otune_core::{OnlineTuner, SnapshotLog, TunerOptions};
use otune_space::{spark_space, ClusterScale, ConfigSpace, Configuration};
use otune_sparksim::{hibench_task, ClusterSpec, FaultKind, FaultProfile, HibenchTask, SimJob};
use otune_telemetry::{metric, EventKind, Telemetry};

const BUDGET: usize = 20;

fn space() -> ConfigSpace {
    spark_space(ClusterScale::hibench())
}

fn opts(seed: u64, t_max: f64) -> TunerOptions {
    TunerOptions {
        budget: BUDGET,
        t_max: Some(t_max),
        enable_meta: false,
        seed,
        ..TunerOptions::default()
    }
}

/// The workload: simulated WordCount with a scripted failure burst so the
/// replay path covers censored observations and the fallback.
fn job(seed: u64, t_max: f64) -> SimJob {
    SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount))
        .with_seed(seed)
        .with_faults(
            FaultProfile::new(seed)
                .with_t_max(t_max)
                .fail_at(5, FaultKind::ExecutorOom)
                .fail_at(6, FaultKind::ExecutorOom)
                .fail_at(7, FaultKind::TimeoutKill),
        )
}

/// One suggest → run → observe cycle; returns the suggested config.
fn step(tuner: &mut OnlineTuner, job: &SimJob, t: u64) -> Configuration {
    let cfg = tuner.suggest(&[]).expect("alternating protocol");
    let r = job.run(&cfg, t);
    if r.status.is_failure() {
        tuner
            .observe_failed(cfg.clone(), r.runtime_s, r.resource, &[])
            .expect("pending");
    } else {
        tuner
            .observe(cfg.clone(), r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    cfg
}

fn seeded_tuner(seed: u64, t_max: f64, baseline_rt: f64, baseline_res: f64) -> OnlineTuner {
    let space = space();
    let mut tuner = OnlineTuner::new(space.clone(), opts(seed, t_max));
    tuner.seed_observation(
        space.default_configuration(),
        baseline_rt,
        baseline_res,
        &[],
    );
    tuner
}

#[test]
fn kill_and_resume_at_every_boundary_reproduces_the_golden_trace() {
    let seed = 13;
    let clean =
        SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount)).with_seed(seed);
    let baseline = clean.run(&space().default_configuration(), 0);
    let t_max = 2.0 * baseline.runtime_s;
    let job = job(seed, t_max);

    // The golden trace: one uninterrupted tuner.
    let mut golden_tuner = seeded_tuner(seed, t_max, baseline.runtime_s, baseline.resource);
    let golden: Vec<Configuration> = (1..=BUDGET as u64)
        .map(|t| step(&mut golden_tuner, &job, t))
        .collect();

    // The relay: a fresh process at EVERY iteration boundary — snapshot,
    // drop the tuner, resume from the snapshot, run one iteration.
    let mut snap = {
        let tuner = seeded_tuner(seed, t_max, baseline.runtime_s, baseline.resource);
        tuner.snapshot("relay")
    };
    let mut relay = Vec::new();
    for t in 1..=BUDGET as u64 {
        let mut tuner =
            OnlineTuner::resume(space(), opts(seed, t_max), &snap, Telemetry::disabled())
                .expect("snapshot replays");
        relay.push(step(&mut tuner, &job, t));
        snap = tuner.snapshot("relay");
    }

    assert_eq!(golden.len(), relay.len());
    for (i, (g, r)) in golden.iter().zip(&relay).enumerate() {
        assert_eq!(g, r, "trace diverged at iteration {}", i + 1);
    }
    // The encoded vectors agree bitwise, not just structurally.
    let s = space();
    for (g, r) in golden.iter().zip(&relay) {
        let (ge, re) = (s.encode(g), s.encode(r));
        assert_eq!(ge.len(), re.len());
        for (a, b) in ge.iter().zip(&re) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    // The relay's final state matches the golden run's.
    let final_tuner =
        OnlineTuner::resume(space(), opts(seed, t_max), &snap, Telemetry::disabled()).unwrap();
    assert_eq!(final_tuner.history().len(), golden_tuner.history().len());
    for (a, b) in final_tuner.history().iter().zip(golden_tuner.history()) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.runtime.to_bits(), b.runtime.to_bits());
        assert_eq!(a.failed, b.failed);
    }
}

#[test]
fn resume_through_the_jsonl_log_counts_and_emits() {
    let seed = 4;
    let clean =
        SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount)).with_seed(seed);
    let baseline = clean.run(&space().default_configuration(), 0);
    let t_max = 2.0 * baseline.runtime_s;
    let job = job(seed, t_max);

    let path = std::env::temp_dir().join(format!(
        "otune-resume-integration-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let log = SnapshotLog::new(&path);

    // First "process": 8 iterations, snapshotting after each observe.
    let mut tuner = seeded_tuner(seed, t_max, baseline.runtime_s, baseline.resource);
    for t in 1..=8u64 {
        step(&mut tuner, &job, t);
        log.append(&tuner.snapshot("wc")).unwrap();
    }
    let before_kill: Vec<_> = tuner.history().iter().map(|o| o.config.clone()).collect();
    drop(tuner); // the "crash"

    // Second "process": load the newest snapshot and keep going.
    let snap = log.load_last().unwrap().expect("snapshots were written");
    assert_eq!(snap.task_id, "wc");
    let (telemetry, sink) = Telemetry::ring(64);
    let mut tuner = OnlineTuner::resume(space(), opts(seed, t_max), &snap, telemetry.clone())
        .expect("log snapshot replays");
    let after: Vec<_> = tuner.history().iter().map(|o| o.config.clone()).collect();
    assert_eq!(before_kill, after, "history reconstructed exactly");

    // The resume is observable: counter + event.
    assert_eq!(
        telemetry.snapshot().unwrap().counters[metric::RESUMES],
        1,
        "one resume counted"
    );
    assert!(sink
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::TunerResumed { observations } if observations == 9)));

    // And the resumed tuner keeps tuning to the end of the budget.
    for t in 9..=BUDGET as u64 {
        step(&mut tuner, &job, t);
    }
    assert_eq!(tuner.history().len(), 1 + BUDGET);
    let best = tuner.best().expect("incumbent exists");
    assert!(!best.failed);

    std::fs::remove_file(&path).ok();
}
