//! Meta-learning (§5) across simulated tasks: similarity learning,
//! warm-starting and the ensemble surrogate wired through the tuner.

use otune_core::prelude::*;
use otune_meta::{extract_meta_features, warm_start_configs, SimilarityLearner};

fn record_for(task: HibenchTask, budget: usize, seed: u64) -> TaskRecord {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(task)).with_seed(seed);
    let mut tuner = OnlineTuner::new(
        space.clone(),
        TunerOptions {
            beta: 0.5,
            budget,
            enable_meta: false,
            seed,
            ..TunerOptions::default()
        },
    );
    for t in 0..budget as u64 {
        let cfg = tuner.suggest(&[]).expect("protocol");
        let r = job.run(&cfg, t);
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    let log = job
        .clone()
        .with_noise(0.0)
        .run(&space.default_configuration(), 0)
        .event_log;
    tuner.export_record(task.name(), extract_meta_features(&log))
}

#[test]
fn similarity_model_trains_on_simulated_histories() {
    let space = spark_space(ClusterScale::hibench());
    let sources = vec![
        record_for(HibenchTask::Sort, 10, 1),
        record_for(HibenchTask::WordCount, 10, 2),
        record_for(HibenchTask::KMeans, 10, 3),
        record_for(HibenchTask::LR, 10, 4),
    ];
    let learner = SimilarityLearner::train(&space, &sources, 40, 0).expect("trains");

    // Self-distance (identical meta-features) must be among the smallest.
    let v = &sources[0].meta_features;
    let self_d = learner.predict(v, v);
    let cross: Vec<f64> = sources[1..]
        .iter()
        .map(|t| learner.predict(v, &t.meta_features))
        .collect();
    let min_cross = cross.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        self_d <= min_cross + 0.15,
        "self-distance {self_d} should be near the minimum (cross: {cross:?})"
    );
}

#[test]
fn warm_start_improves_early_iterations() {
    let space = spark_space(ClusterScale::hibench());
    let sources = vec![
        record_for(HibenchTask::Sort, 12, 5),
        record_for(HibenchTask::WordCount, 12, 6),
        record_for(HibenchTask::KMeans, 12, 7),
    ];
    let learner = SimilarityLearner::train(&space, &sources, 40, 0).expect("trains");

    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::TeraSort));
    let log = job
        .clone()
        .with_noise(0.0)
        .run(&space.default_configuration(), 0)
        .event_log;
    let warm = warm_start_configs(&learner, &extract_meta_features(&log), &sources, 3);
    assert!(!warm.is_empty());

    let early_best = |warm_configs: Vec<Configuration>| {
        let mut tuner = OnlineTuner::new(
            space.clone(),
            TunerOptions {
                beta: 0.5,
                budget: 3,
                warm_configs,
                enable_meta: false,
                seed: 9,
                ..TunerOptions::default()
            },
        );
        let mut best = f64::INFINITY;
        for t in 0..3u64 {
            let cfg = tuner.suggest(&[]).unwrap();
            let r = job.run(&cfg, 5000 + t);
            best = best.min(r.execution_cost());
            tuner.observe(cfg, r.runtime_s, r.resource, &[]).unwrap();
        }
        best
    };
    let cold = early_best(vec![]);
    let warm_best = early_best(warm);
    assert!(
        warm_best < cold,
        "warm-start beats cold start in the first 3 iterations: {warm_best} vs {cold}"
    );
}

#[test]
fn tuner_accepts_base_tasks_for_the_ensemble() {
    let space = spark_space(ClusterScale::hibench());
    let bases = vec![
        record_for(HibenchTask::Sort, 10, 11),
        record_for(HibenchTask::WordCount, 10, 12),
    ];
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::TeraSort));
    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            budget: 8,
            base_tasks: bases,
            enable_meta: true,
            seed: 13,
            ..TunerOptions::default()
        },
    );
    for t in 0..8u64 {
        let cfg = tuner.suggest(&[]).expect("protocol");
        let r = job.run(&cfg, t);
        tuner
            .observe(cfg, r.runtime_s, r.resource, &[])
            .expect("pending");
    }
    assert!(tuner.best().is_some());
}
