//! The OnlineTune controller service lifecycle against the simulator:
//! request/report cycles, multiple tasks, repository mirroring, stopping,
//! and restart on workload drift.

use otune_core::controller::TaskState;
use otune_core::prelude::*;
use otune_meta::extract_meta_features;

#[test]
fn full_service_lifecycle_with_two_tasks() {
    let mut ctl = OnlineTuneController::new();
    let space = spark_space(ClusterScale::hibench());

    let jobs = [
        (
            "wc-hourly",
            SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount)),
        ),
        (
            "sort-hourly",
            SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::Sort)),
        ),
    ];

    let mut handles = Vec::new();
    for (id, _) in &jobs {
        let h = ctl.create_task(
            id,
            space.clone(),
            TunerOptions {
                beta: 0.5,
                budget: 6,
                enable_meta: false,
                ..TunerOptions::default()
            },
        );
        handles.push(h);
    }

    for t in 0..6u64 {
        for (h, (_, job)) in handles.iter().zip(&jobs) {
            let cfg = ctl.request_config(h, &[]).expect("registered task");
            let r = job.run(&cfg, t);
            let meta = if t == 0 {
                Some(extract_meta_features(&r.event_log))
            } else {
                None
            };
            ctl.report_result(h, cfg, r.runtime_s, r.resource, &[], meta)
                .expect("pending suggestion");
        }
    }

    for h in &handles {
        // Budget exhausted: the next request flips to Stopped.
        let _ = ctl.request_config(h, &[]).unwrap();
        assert_eq!(ctl.state(h), Ok(TaskState::Stopped));
        assert!(ctl.best_config(h).unwrap().is_some());
        let rec = ctl.repository().task(h.as_str()).unwrap();
        assert_eq!(rec.observations.len(), 6);
        assert!(!rec.meta_features.is_empty(), "meta features recorded");
    }
}

#[test]
fn degradation_restarts_tuning_and_transfers_history() {
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::WordCount));

    let mut tuner = OnlineTuner::new(
        space,
        TunerOptions {
            beta: 0.5,
            budget: 6,
            restart_after: 2,
            degradation_factor: 1.3,
            enable_meta: true,
            seed: 17,
            ..TunerOptions::default()
        },
    );
    for t in 0..6u64 {
        let cfg = tuner.suggest(&[]).unwrap();
        let r = job.run(&cfg, t);
        tuner.observe(cfg, r.runtime_s, r.resource, &[]).unwrap();
    }
    let _ = tuner.suggest(&[]).unwrap();
    assert!(tuner.is_stopped());
    let best = tuner.best().unwrap();
    let (rt, rs) = (best.runtime, best.resource);
    tuner.observe(best.config.clone(), rt, rs, &[]).unwrap();

    // The workload drifts: post-tuning executions degrade 10x.
    for _ in 0..2 {
        let cfg = tuner.suggest(&[]).unwrap();
        tuner.observe(cfg, rt * 10.0, rs, &[]).unwrap();
    }
    assert_eq!(tuner.restarts(), 1);
    assert!(!tuner.is_stopped());

    // The fresh round still works and can use the old round as meta base.
    for t in 100..104u64 {
        let cfg = tuner.suggest(&[]).unwrap();
        let r = job.run(&cfg, t);
        tuner.observe(cfg, r.runtime_s, r.resource, &[]).unwrap();
    }
    assert_eq!(tuner.history().len(), 4);
}

#[test]
fn repository_round_trips_through_json() {
    let mut ctl = OnlineTuneController::new();
    let space = spark_space(ClusterScale::hibench());
    let job = SimJob::new(ClusterSpec::hibench(), hibench_task(HibenchTask::KMeans));
    let h = ctl.create_task(
        "km",
        space,
        TunerOptions {
            budget: 4,
            enable_meta: false,
            ..TunerOptions::default()
        },
    );
    for t in 0..4u64 {
        let cfg = ctl.request_config(&h, &[]).unwrap();
        let r = job.run(&cfg, t);
        ctl.report_result(&h, cfg, r.runtime_s, r.resource, &[], None)
            .unwrap();
    }
    let json = ctl.repository().export_json();
    let back = DataRepository::import_json(&json).unwrap();
    assert_eq!(back.task("km").unwrap().observations.len(), 4);
}
