//! Fleet determinism: a task's suggestion trace is bitwise identical
//! whether it is driven sequentially or through batched waves — at any
//! shard count (`OTUNE_SHARDS`), any pool width (`OTUNE_THREADS`), and
//! under any interleaving of tasks across waves. Sharding decides *where*
//! a task's step runs, never *what* it computes.

use otune_core::fleet::{FleetOptions, FleetReport, FleetRequest};
use otune_core::prelude::*;
use otune_core::TaskHandle;
use otune_meta::SharedMetaStore;
use otune_pool::Pool;
use std::sync::Arc;

const N_TASKS: usize = 32;
const BUDGET: usize = 6;

fn toy_space() -> ConfigSpace {
    use otune_space::Parameter;
    ConfigSpace::new(vec![
        Parameter::int("n", 1, 50, 10),
        Parameter::int("m", 1, 32, 8),
    ])
}

/// Deterministic per-task workload: tasks differ so traces differ.
fn toy_eval(task: usize, c: &Configuration) -> (f64, f64) {
    let n = c[0].as_int().unwrap() as f64;
    let m = c[1].as_int().unwrap() as f64;
    let w = 1.0 + task as f64 * 0.25;
    (w * 400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
}

fn toy_options(task: usize) -> TunerOptions {
    TunerOptions {
        budget: BUDGET,
        enable_meta: false,
        seed: 1000 + task as u64,
        ..TunerOptions::default()
    }
}

/// A task's trace as raw bits of the encoded configurations.
type Trace = Vec<Vec<u64>>;

fn bits(space: &ConfigSpace, cfg: &Configuration) -> Vec<u64> {
    space.encode(cfg).iter().map(|v| v.to_bits()).collect()
}

/// FNV-1a over the task id — mirrors the controller's shard hash, which is
/// documented stable across processes and platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn register_fleet(ctl: &mut OnlineTuneController) -> Vec<TaskHandle> {
    (0..N_TASKS)
        .map(|i| ctl.create_task(&format!("fleet-task-{i}"), toy_space(), toy_options(i)))
        .collect()
}

/// Golden reference: every task driven through the sequential single-task
/// API, one full step at a time.
fn sequential_traces() -> Vec<Trace> {
    let space = toy_space();
    let mut ctl = OnlineTuneController::with_options(
        Arc::new(DataRepository::new()),
        FleetOptions {
            shards: 1,
            n_refit: 32,
            pool: Pool::new(1),
        },
    );
    let handles = register_fleet(&mut ctl);
    let mut traces: Vec<Trace> = vec![Vec::new(); N_TASKS];
    for _ in 0..BUDGET {
        for (t, h) in handles.iter().enumerate() {
            let cfg = ctl.request_config(h, &[]).unwrap();
            traces[t].push(bits(&space, &cfg));
            let (rt, r) = toy_eval(t, &cfg);
            ctl.report_result(h, cfg, rt, r, &[], None).unwrap();
        }
    }
    traces
}

/// Drive the fleet through batched waves, one wave per budget step, with
/// `order` choosing each wave's task interleaving.
fn wave_traces(
    mut ctl: OnlineTuneController,
    order: impl Fn(u64, &[TaskHandle]) -> Vec<usize>,
) -> Vec<Trace> {
    let space = toy_space();
    let handles = register_fleet(&mut ctl);
    let mut traces: Vec<Trace> = vec![Vec::new(); N_TASKS];
    for wave in 0..BUDGET as u64 {
        let idxs = order(wave, &handles);
        assert_eq!(idxs.len(), N_TASKS, "order must be a permutation");
        let requests: Vec<FleetRequest> = idxs
            .iter()
            .map(|&t| FleetRequest {
                handle: &handles[t],
                context: &[],
            })
            .collect();
        let configs = ctl.request_configs(&requests);
        let reports: Vec<FleetReport> = configs
            .into_iter()
            .zip(&idxs)
            .map(|(cfg, &t)| {
                let cfg = cfg.unwrap();
                traces[t].push(bits(&space, &cfg));
                let (rt, r) = toy_eval(t, &cfg);
                FleetReport {
                    handle: &handles[t],
                    config: cfg,
                    runtime_s: rt,
                    resource: r,
                    context: &[],
                    meta_features: None,
                }
            })
            .collect();
        for res in ctl.report_results(&reports) {
            res.unwrap();
        }
    }
    traces
}

fn sharded_controller(shards: usize, threads: usize) -> OnlineTuneController {
    OnlineTuneController::with_options(
        Arc::new(DataRepository::new()),
        FleetOptions {
            shards,
            n_refit: 32,
            pool: Pool::new(threads),
        },
    )
}

fn round_robin(_wave: u64, handles: &[TaskHandle]) -> Vec<usize> {
    (0..handles.len()).collect()
}

/// All of one shard's tasks, then the next shard's (4-way grouping).
fn shard_major(_wave: u64, handles: &[TaskHandle]) -> Vec<usize> {
    let mut idxs: Vec<usize> = (0..handles.len()).collect();
    idxs.sort_by_key(|&t| (fnv1a(handles[t].as_str()) % 4, t));
    idxs
}

/// A deterministic per-wave shuffle (LCG-driven Fisher-Yates).
fn seeded_shuffle(wave: u64, handles: &[TaskHandle]) -> Vec<usize> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (wave + 1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut idxs: Vec<usize> = (0..handles.len()).collect();
    for i in (1..idxs.len()).rev() {
        idxs.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    idxs
}

#[test]
fn wave_traces_match_sequential_bitwise_across_shards_and_interleavings() {
    let golden = sequential_traces();
    type OrderFn = fn(u64, &[TaskHandle]) -> Vec<usize>;
    let orders: [(&str, OrderFn); 3] = [
        ("round-robin", round_robin),
        ("shard-major", shard_major),
        ("seeded-shuffle", seeded_shuffle),
    ];
    for shards in [1usize, 4] {
        for (name, order) in orders {
            let traces = wave_traces(sharded_controller(shards, 4), order);
            assert_eq!(
                traces, golden,
                "interleaving {name} with {shards} shard(s) changed a task trace"
            );
        }
    }
    // And under whatever OTUNE_SHARDS / OTUNE_THREADS the environment (CI
    // matrix) selects.
    let traces = wave_traces(OnlineTuneController::new(), round_robin);
    assert_eq!(traces, golden, "env-configured fleet changed a task trace");
}

/// Record a short toy-task history to serve as a meta-learning base task.
fn base_record(name: &str, task: usize, seed: u64) -> TaskRecord {
    let mut tuner = OnlineTuner::new(
        toy_space(),
        TunerOptions {
            budget: 8,
            enable_meta: false,
            seed,
            ..TunerOptions::default()
        },
    );
    for _ in 0..8 {
        let cfg = tuner.suggest(&[]).unwrap();
        let (rt, r) = toy_eval(task, &cfg);
        tuner.observe(cfg, rt, r, &[]).unwrap();
    }
    tuner.export_record(name, vec![1.0 + task as f64, 2.0, 3.0])
}

#[test]
fn shared_meta_store_is_bitwise_transparent() {
    // Tuners running the meta ensemble produce identical traces whether
    // base surrogates come from private caches or from a fleet-wide
    // shared store — the store only memoizes pure fits.
    let bases: Vec<TaskRecord> = (0..3)
        .map(|t| base_record(&format!("base-{t}"), t, 7 + t as u64))
        .collect();
    let opts = TunerOptions {
        budget: BUDGET,
        enable_meta: true,
        base_tasks: bases,
        seed: 42,
        ..TunerOptions::default()
    };
    let space = toy_space();
    let run = |shared: Option<Arc<SharedMetaStore>>| -> Trace {
        let mut tuner = OnlineTuner::new(toy_space(), opts.clone());
        if let Some(store) = shared {
            tuner.set_shared_meta(store);
        }
        let mut trace = Trace::new();
        for _ in 0..BUDGET {
            let cfg = tuner.suggest(&[]).unwrap();
            trace.push(bits(&space, &cfg));
            let (rt, r) = toy_eval(9, &cfg);
            tuner.observe(cfg, rt, r, &[]).unwrap();
        }
        trace
    };
    let private = run(None);
    let store = Arc::new(SharedMetaStore::new());
    let first = run(Some(Arc::clone(&store)));
    assert!(store.n_bases() > 0, "shared store captured the base fits");
    let warm = run(Some(Arc::clone(&store)));
    assert_eq!(first, private, "shared store changed a suggestion");
    assert_eq!(warm, private, "warm shared store changed a suggestion");
}
