//! Hierarchical tracing against the full service: driving fleet waves
//! through the controller must produce one coherent span tree per wave —
//! wave → shard → task → suggest → surrogate/acquisition kernels — whose
//! *structure* is a pure function of the workload: identical across pool
//! widths, reconstructible from the JSONL event stream, and absent
//! entirely on untraced handles.

use otune_core::fleet::{FleetOptions, FleetReport, FleetRequest};
use otune_core::prelude::*;
use otune_core::telemetry::{
    read_jsonl_lossy, spans_from_events, structural_key, JsonlSink, SpanRecord,
};
use otune_core::TaskHandle;
use otune_pool::Pool;
use std::collections::BTreeMap;
use std::sync::Arc;

const N_TASKS: usize = 4;
const BUDGET: usize = 10;

fn toy_space() -> ConfigSpace {
    use otune_space::Parameter;
    ConfigSpace::new(vec![
        Parameter::int("n", 1, 50, 10),
        Parameter::int("m", 1, 32, 8),
    ])
}

fn toy_eval(task: usize, c: &Configuration) -> (f64, f64) {
    let n = c[0].as_int().unwrap() as f64;
    let m = c[1].as_int().unwrap() as f64;
    let w = 1.0 + task as f64 * 0.25;
    (w * 400.0 / n + 30.0 / m + 10.0, n * (1.0 + 0.5 * m))
}

/// Drive `N_TASKS` toy tasks through `BUDGET` batched waves on a
/// controller with the given sharding/pool layout.
fn drive_fleet(telemetry: Telemetry, shards: usize, threads: usize) -> Telemetry {
    let mut ctl = OnlineTuneController::with_options(
        Arc::new(DataRepository::new()),
        FleetOptions {
            shards,
            n_refit: 32,
            pool: Pool::new(threads),
        },
    );
    ctl.set_telemetry(telemetry.clone());
    let handles: Vec<TaskHandle> = (0..N_TASKS)
        .map(|i| {
            ctl.create_task(
                &format!("trace-task-{i}"),
                toy_space(),
                TunerOptions {
                    budget: BUDGET,
                    enable_meta: false,
                    seed: 2000 + i as u64,
                    ..TunerOptions::default()
                },
            )
        })
        .collect();
    for _ in 0..BUDGET {
        let requests: Vec<FleetRequest> = handles
            .iter()
            .map(|h| FleetRequest {
                handle: h,
                context: &[],
            })
            .collect();
        let configs = ctl.request_configs(&requests);
        let reports: Vec<FleetReport> = configs
            .into_iter()
            .enumerate()
            .map(|(t, cfg)| {
                let cfg = cfg.unwrap();
                let (rt, r) = toy_eval(t, &cfg);
                FleetReport {
                    handle: &handles[t],
                    config: cfg,
                    runtime_s: rt,
                    resource: r,
                    context: &[],
                    meta_features: None,
                }
            })
            .collect();
        for res in ctl.report_results(&reports) {
            res.unwrap();
        }
    }
    telemetry
}

/// Walk a span's ancestor chain and return the names root-to-leaf.
fn ancestry<'a>(by_id: &BTreeMap<u64, &'a SpanRecord>, span: &'a SpanRecord) -> Vec<&'a str> {
    let mut names = vec![span.name.as_str()];
    let mut cur = span;
    while cur.parent_id != 0 {
        match by_id.get(&cur.parent_id) {
            Some(parent) => {
                names.push(parent.name.as_str());
                cur = parent;
            }
            None => break,
        }
    }
    names.reverse();
    names
}

fn name_counts(spans: &[SpanRecord]) -> BTreeMap<&str, usize> {
    let mut counts = BTreeMap::new();
    for s in spans {
        *counts.entry(s.name.as_str()).or_insert(0) += 1;
    }
    counts
}

#[test]
fn fleet_wave_spans_nest_through_the_full_stack() {
    let (telemetry, _sink) = Telemetry::ring_traced(1, 11);
    let telemetry = drive_fleet(telemetry, 2, 2);
    let spans = telemetry.traces();
    assert!(!spans.is_empty());
    assert_eq!(telemetry.traces_dropped(), 0, "buffer held the whole run");

    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id, s)).collect();
    let counts = name_counts(&spans);

    // One wave root per controller call: BUDGET suggest waves and
    // BUDGET report waves, each a distinct trace.
    assert_eq!(counts["fleet_wave_suggest"], BUDGET);
    assert_eq!(counts["fleet_wave_report"], BUDGET);
    // Every task stepped in every suggest wave, inside a shard group.
    assert_eq!(counts["suggest"], N_TASKS * BUDGET);
    assert_eq!(counts["task"], 2 * N_TASKS * BUDGET);
    assert!(counts["shard"] >= 2 * BUDGET, "both wave kinds sharded");

    // The documented hierarchy holds at every level.
    for s in &spans {
        match s.name.as_str() {
            "fleet_wave_suggest" | "fleet_wave_report" => {
                assert_eq!(s.parent_id, 0, "wave spans are trace roots")
            }
            "shard" => {
                let parent = by_id[&s.parent_id];
                assert!(parent.name.starts_with("fleet_wave"), "{}", parent.name);
            }
            "task" => assert_eq!(by_id[&s.parent_id].name, "shard"),
            "suggest" | "observe" => assert_eq!(by_id[&s.parent_id].name, "task"),
            _ => {}
        }
    }

    // The deep stack is attributed: BO iterations reach the surrogate
    // store and the acquisition maximizer, and GP fits reach the
    // Cholesky kernel in `otune-linalg` — a leaf span four-plus levels
    // below the wave root.
    for leaf in ["gp_full_fit", "eic_maximize", "chol_factor"] {
        let one = spans
            .iter()
            .find(|s| s.name == leaf)
            .unwrap_or_else(|| panic!("{leaf} span missing"));
        let chain = ancestry(&by_id, one);
        assert_eq!(chain[0], "fleet_wave_suggest", "{chain:?}");
        assert!(chain.contains(&"suggest"), "{chain:?}");
    }

    // Task labels follow the `for_task` relabeling into the trace.
    assert!(spans
        .iter()
        .filter(|s| s.name == "suggest")
        .all(|s| s.task.starts_with("trace-task-")));
}

#[test]
fn trace_structure_is_invariant_across_pool_widths() {
    let (seq, _s1) = Telemetry::ring_traced(1, 11);
    let (par, _s2) = Telemetry::ring_traced(1, 11);
    let seq = drive_fleet(seq, 4, 1);
    let par = drive_fleet(par, 4, 4);
    let a = seq.traces();
    let b = par.traces();
    assert_eq!(a.len(), b.len());
    assert_eq!(
        structural_key(&a),
        structural_key(&b),
        "span ids, names, and parenting must not depend on OTUNE_THREADS"
    );
}

#[test]
fn shard_count_moves_placement_but_not_per_task_work() {
    let (one, _s1) = Telemetry::ring_traced(1, 11);
    let (four, _s2) = Telemetry::ring_traced(1, 11);
    let one = drive_fleet(one, 1, 1).traces();
    let four = drive_fleet(four, 4, 1).traces();
    let mut a = name_counts(&one);
    let mut b = name_counts(&four);
    // Shard spans are placement: their count tracks the layout.
    assert!(a.remove("shard") < b.remove("shard"));
    // Everything else — wave roots, per-task steps, kernel work — is
    // identical, because sharding decides where a step runs, not what
    // it computes.
    assert_eq!(a, b);
}

#[test]
fn untraced_and_disabled_handles_record_no_spans_under_fleet_load() {
    let (untraced, sink) = Telemetry::ring(1 << 16);
    let untraced = drive_fleet(untraced, 2, 2);
    assert!(!untraced.is_tracing());
    assert!(untraced.traces().is_empty());
    // Metrics and events still flow; tracing is strictly opt-in.
    assert!(untraced.snapshot().unwrap().counters["fleet_waves"] >= 2);
    assert!(!sink.events().is_empty());

    let disabled = drive_fleet(Telemetry::disabled(), 2, 2);
    assert!(disabled.traces().is_empty());
    assert!(disabled.snapshot().is_none());
}

#[test]
fn jsonl_stream_reconstructs_the_in_memory_trace() {
    let path = std::env::temp_dir().join("otune-trace-integration.jsonl");
    let telemetry = Telemetry::new_traced(Box::new(JsonlSink::create(&path).unwrap()), 11);
    let telemetry = drive_fleet(telemetry, 2, 2);
    telemetry.flush();

    let (events, torn) = read_jsonl_lossy(&path).unwrap();
    assert_eq!(torn, 0);
    let rebuilt = spans_from_events(&events);
    let in_memory = telemetry.traces();
    assert_eq!(rebuilt.len(), in_memory.len());
    assert_eq!(
        structural_key(&rebuilt),
        structural_key(&in_memory),
        "the JSONL stream carries the full trace"
    );
    std::fs::remove_file(&path).ok();
}
